//! The k-anonymity family: W4M, GLOVE, KLT.
//!
//! These are reimplemented at the fidelity needed for the paper's
//! comparison axes (privacy / utility / recovery), with the following
//! simplifications relative to the original systems:
//!
//! * **W4M** (Abul et al., Inf. Syst.'10) originally clusters by
//!   spatiotemporal edit distance and edits trajectories until each
//!   cluster co-locates within a cylinder of radius δ. Here clustering
//!   uses time-aligned average point distance (a cheap edit-distance
//!   surrogate) and co-location is enforced by pulling each sample
//!   toward the time-aligned pivot sample until it is within δ —
//!   preserving W4M's signature behaviour: trajectories deviate from
//!   real paths toward their pivot (hard to map-match, decent utility).
//! * **GLOVE** (Gramaglia & Fiore, CoNEXT'15) merges trajectory pairs
//!   with minimal generalization cost until k-anonymity holds, and
//!   publishes generalized (region) samples. Here every cluster member
//!   is published as the per-index bounding-box centre of the cluster —
//!   region-based generalization with exactly GLOVE's heavy utility
//!   cost and strong indistinguishability.
//! * **KLT** (Tu et al., TNSM'19) adds l-diversity / t-closeness over
//!   POI semantics. Without a POI layer, location categories are
//!   derived by hashing grid cells into `num_categories` classes; a
//!   cluster whose members do not jointly cover `l` categories is merged
//!   further (the l-diversity repair loop).

use trajdp_model::{Dataset, GridLevel, Point, Sample, Trajectory};

/// W4M parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct W4mConfig {
    /// Anonymity set size `k`.
    pub k: usize,
    /// Cylinder radius δ, metres.
    pub delta: f64,
}

impl Default for W4mConfig {
    fn default() -> Self {
        Self { k: 5, delta: 300.0 }
    }
}

/// GLOVE parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GloveConfig {
    /// Anonymity set size `k`.
    pub k: usize,
}

impl Default for GloveConfig {
    fn default() -> Self {
        Self { k: 5 }
    }
}

/// KLT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KltConfig {
    /// Anonymity set size `k`.
    pub k: usize,
    /// Diversity requirement `l` (distinct location categories per
    /// cluster).
    pub l: usize,
    /// t-closeness bound: the total-variation distance between a
    /// cluster's category distribution and the global one must not
    /// exceed `t` (the paper uses t = 0.1).
    pub t: f64,
    /// Number of synthetic location categories.
    pub num_categories: usize,
    /// Grid granularity used to derive categories. Coarser grids make
    /// categories scarcer, so the repair loop actually triggers.
    pub granularity: u32,
}

impl Default for KltConfig {
    fn default() -> Self {
        Self { k: 5, l: 3, t: 0.1, num_categories: 8, granularity: 16 }
    }
}

/// Time-aligned average distance between two trajectories — the cheap
/// surrogate for spatiotemporal edit distance used in clustering.
fn aligned_distance(a: &Trajectory, b: &Trajectory) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return f64::INFINITY;
    }
    let sum: f64 = (0..n).map(|i| a.samples[i].loc.dist(&b.samples[i].loc)).sum();
    sum / n as f64 + (a.len() as f64 - b.len() as f64).abs()
}

/// Greedy clustering into groups of at least `k`: repeatedly seed a
/// cluster with an unassigned trajectory and absorb its `k−1` nearest
/// unassigned neighbours. The trailing remainder joins the last cluster.
fn cluster_by_k(ds: &Dataset, k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 1, "k must be positive");
    let n = ds.len();
    let mut assigned = vec![false; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for seed in 0..n {
        if assigned[seed] {
            continue;
        }
        let remaining = assigned.iter().filter(|a| !**a).count();
        if remaining < 2 * k {
            // Sweep everything left into one final cluster.
            let members: Vec<usize> = (0..n).filter(|&i| !assigned[i]).collect();
            for &m in &members {
                assigned[m] = true;
            }
            clusters.push(members);
            break;
        }
        let mut dists: Vec<(f64, usize)> = (0..n)
            .filter(|&i| !assigned[i] && i != seed)
            .map(|i| (aligned_distance(&ds.trajectories[seed], &ds.trajectories[i]), i))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut members = vec![seed];
        members.extend(dists.into_iter().take(k - 1).map(|(_, i)| i));
        for &m in &members {
            assigned[m] = true;
        }
        clusters.push(members);
    }
    clusters
}

/// W4M: `(k, δ)`-anonymity by pulling every trajectory toward its
/// cluster pivot until each time-aligned sample lies within δ of the
/// pivot's.
pub fn w4m(ds: &Dataset, cfg: &W4mConfig) -> Dataset {
    assert!(cfg.delta >= 0.0, "delta must be non-negative");
    let clusters = cluster_by_k(ds, cfg.k);
    let mut out: Vec<Option<Trajectory>> = vec![None; ds.len()];
    for members in clusters {
        // Pivot: the member minimizing total distance to the others.
        let pivot = *members
            .iter()
            .min_by(|&&a, &&b| {
                let da: f64 = members
                    .iter()
                    .map(|&m| aligned_distance(&ds.trajectories[a], &ds.trajectories[m]))
                    .sum();
                let db: f64 = members
                    .iter()
                    .map(|&m| aligned_distance(&ds.trajectories[b], &ds.trajectories[m]))
                    .sum();
                da.total_cmp(&db)
            })
            .expect("non-empty cluster");
        let pivot_t = ds.trajectories[pivot].clone();
        for &m in &members {
            let orig = &ds.trajectories[m];
            let samples = orig
                .samples
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let target = pivot_t
                        .samples
                        .get(i.min(pivot_t.len().saturating_sub(1)))
                        .map(|p| p.loc)
                        .unwrap_or(s.loc);
                    let d = s.loc.dist(&target);
                    let loc = if d <= cfg.delta || d == 0.0 {
                        s.loc
                    } else {
                        // Pull onto the δ-sphere around the pivot sample.
                        target.lerp(&s.loc, cfg.delta / d)
                    };
                    // Blur time toward the pivot's aligned timestamp —
                    // W4M anonymizes the spatiotemporal cylinder, not
                    // just space. Midpoints of two monotone sequences
                    // stay monotone.
                    let pivot_time = pivot_t
                        .samples
                        .get(i.min(pivot_t.len().saturating_sub(1)))
                        .map(|p| p.t)
                        .unwrap_or(s.t);
                    Sample::new(loc, (s.t + pivot_time) / 2)
                })
                .collect();
            out[m] = Some(Trajectory::new(orig.id, samples));
        }
    }
    Dataset::new(ds.domain, out.into_iter().map(|t| t.expect("all slots filled")).collect())
}

/// GLOVE: region-based generalization — each member of a cluster is
/// published as the per-index bounding-box centre of all members.
pub fn glove(ds: &Dataset, cfg: &GloveConfig) -> Dataset {
    let clusters = cluster_by_k(ds, cfg.k);
    generalize_clusters(ds, &clusters)
}

fn generalize_clusters(ds: &Dataset, clusters: &[Vec<usize>]) -> Dataset {
    let mut out: Vec<Option<Trajectory>> = vec![None; ds.len()];
    for members in clusters {
        let max_len = members.iter().map(|&m| ds.trajectories[m].len()).max().unwrap_or(0);
        // Per-index generalized region centre.
        let mut centres: Vec<Point> = Vec::with_capacity(max_len);
        for i in 0..max_len {
            let mut rect = trajdp_model::Rect::empty();
            for &m in members {
                let t = &ds.trajectories[m];
                if let Some(s) = t.samples.get(i.min(t.len().saturating_sub(1))) {
                    rect.expand(&s.loc);
                }
            }
            centres.push(if rect.is_empty() { Point::new(0.0, 0.0) } else { rect.center() });
        }
        // Generalized timestamps: the cluster-median per index, so the
        // published time is a shared (region, time-range representative)
        // value — GLOVE's temporal generalization.
        let mut times: Vec<i64> = Vec::with_capacity(max_len);
        for i in 0..max_len {
            let mut ts: Vec<i64> = members
                .iter()
                .filter_map(|&m| {
                    let t = &ds.trajectories[m];
                    t.samples.get(i.min(t.len().saturating_sub(1))).map(|s| s.t)
                })
                .collect();
            ts.sort_unstable();
            times.push(ts.get(ts.len() / 2).copied().unwrap_or(0));
        }
        // Keep published timestamps monotone.
        for i in 1..times.len() {
            times[i] = times[i].max(times[i - 1]);
        }
        for &m in members {
            let orig = &ds.trajectories[m];
            let samples = orig
                .samples
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let idx = i.min(centres.len().saturating_sub(1));
                    Sample::new(centres[idx], times[idx])
                })
                .collect();
            out[m] = Some(Trajectory::new(orig.id, samples));
        }
    }
    Dataset::new(ds.domain, out.into_iter().map(|t| t.expect("all slots filled")).collect())
}

/// Synthetic location category of a sample (hash of its grid cell).
fn category(grid: &GridLevel, p: &Point, num_categories: usize) -> usize {
    let c = grid.locate(p);
    let h = (u64::from(c.col).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ (u64::from(c.row).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    (h % num_categories as u64) as usize
}

/// Per-cluster (or global, when `members` covers everything) category
/// distribution.
fn category_distribution(
    ds: &Dataset,
    grid: &GridLevel,
    members: &[usize],
    num_categories: usize,
) -> Vec<f64> {
    let mut h = vec![0.0; num_categories];
    let mut total = 0.0;
    for &m in members {
        for s in &ds.trajectories[m].samples {
            h[category(grid, &s.loc, num_categories)] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for v in &mut h {
            *v /= total;
        }
    }
    h
}

/// Total-variation distance between two categorical distributions.
fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0
}

/// KLT: GLOVE clustering, then a repair loop enforcing both
/// `l`-diversity (each cluster covers at least `l` categories) and
/// `t`-closeness (each cluster's category distribution is within `t`
/// total-variation of the global one) — clusters violating either are
/// merged with a neighbour — followed by the same generalization.
pub fn klt(ds: &Dataset, cfg: &KltConfig) -> Dataset {
    assert!(cfg.l >= 1 && cfg.num_categories >= cfg.l, "need at least l categories");
    assert!((0.0..=1.0).contains(&cfg.t), "t must be a probability distance");
    let grid = GridLevel::new(ds.domain, cfg.granularity, 0);
    let all: Vec<usize> = (0..ds.len()).collect();
    let global = category_distribution(ds, &grid, &all, cfg.num_categories);
    let mut clusters = cluster_by_k(ds, cfg.k);
    let ok = |members: &[usize]| -> bool {
        let dist = category_distribution(ds, &grid, members, cfg.num_categories);
        let covered = dist.iter().filter(|&&v| v > 0.0).count();
        covered >= cfg.l.min(global.iter().filter(|&&v| v > 0.0).count())
            && total_variation(&dist, &global) <= cfg.t.max(min_achievable_t(members, ds))
    };
    // Repair: merge violating clusters into their neighbour. The `t`
    // bound is relaxed per-cluster to what is achievable so the loop
    // terminates even on adversarial data (a single cluster always
    // matches the global distribution exactly).
    let mut i = 0;
    while i < clusters.len() {
        if clusters.len() > 1 && !ok(&clusters[i]) {
            let absorbed = clusters.remove(i);
            let j = if i < clusters.len() { i } else { i - 1 };
            clusters[j].extend(absorbed);
            // Re-check the merged cluster from its position.
            i = j;
        } else {
            i += 1;
        }
    }
    generalize_clusters(ds, &clusters)
}

/// Tiny clusters cannot be arbitrarily close to the global distribution;
/// this floor keeps the repair loop from demanding the impossible.
fn min_achievable_t(members: &[usize], ds: &Dataset) -> f64 {
    let total: usize = members.iter().map(|&m| ds.trajectories[m].len()).sum();
    if total == 0 {
        1.0
    } else {
        0.5 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trajdp_model::Rect;

    fn random_ds(n: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let trajs = (0..n)
            .map(|id| {
                let cx: f64 = rng.gen_range(0.0..900.0);
                let cy: f64 = rng.gen_range(0.0..900.0);
                Trajectory::new(
                    id as u64,
                    (0..len)
                        .map(|i| {
                            Sample::new(
                                Point::new(
                                    cx + rng.gen_range(0.0..100.0),
                                    cy + rng.gen_range(0.0..100.0),
                                ),
                                i as i64 * 60,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        Dataset::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), trajs)
    }

    #[test]
    fn clusters_have_at_least_k_members() {
        let d = random_ds(23, 10, 1);
        for k in [2, 5, 7] {
            let clusters = cluster_by_k(&d, k);
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, d.len(), "every trajectory assigned exactly once");
            for c in &clusters {
                assert!(c.len() >= k, "cluster of size {} < k={k}", c.len());
            }
        }
    }

    #[test]
    fn w4m_enforces_delta_colocation() {
        let d = random_ds(20, 12, 2);
        let cfg = W4mConfig { k: 5, delta: 50.0 };
        let out = w4m(&d, &cfg);
        assert_eq!(out.len(), d.len());
        // Re-derive clusters to check the cylinder property.
        let clusters = cluster_by_k(&d, cfg.k);
        for members in clusters {
            let pivot = members[0]; // any member: all pulled to one pivot ± δ
            let _ = pivot;
            // Each published sample lies within δ of some cluster pivot
            // sample — verified indirectly: successive anonymized members
            // of a cluster are within 2δ of each other at aligned indices.
            for w in members.windows(2) {
                let (a, b) = (&out.trajectories[w[0]], &out.trajectories[w[1]]);
                let n = a.len().min(b.len());
                for i in 0..n {
                    let dist = a.samples[i].loc.dist(&b.samples[i].loc);
                    assert!(
                        dist <= 2.0 * cfg.delta + 1e-6,
                        "aligned samples {dist} m apart exceed the 2δ cylinder"
                    );
                }
            }
        }
    }

    #[test]
    fn w4m_preserves_structure() {
        let d = random_ds(15, 8, 3);
        let out = w4m(&d, &W4mConfig::default());
        for (o, a) in d.trajectories.iter().zip(&out.trajectories) {
            assert_eq!(o.id, a.id);
            assert_eq!(o.len(), a.len());
            for (so, sa) in o.samples.iter().zip(&a.samples) {
                assert_eq!(so.t, sa.t, "W4M must not alter timestamps");
            }
        }
    }

    #[test]
    fn glove_makes_cluster_members_indistinguishable() {
        let d = random_ds(20, 10, 4);
        let cfg = GloveConfig { k: 5 };
        let out = glove(&d, &cfg);
        let clusters = cluster_by_k(&d, cfg.k);
        for members in clusters {
            // All equal-length members publish identical locations.
            let first = &out.trajectories[members[0]];
            for &m in &members[1..] {
                let t = &out.trajectories[m];
                let n = t.len().min(first.len());
                for i in 0..n {
                    assert_eq!(
                        t.samples[i].loc, first.samples[i].loc,
                        "generalized members must coincide"
                    );
                }
            }
        }
    }

    #[test]
    fn glove_destroys_more_geometry_than_w4m() {
        let d = random_ds(25, 10, 5);
        let disp = |a: &Dataset, b: &Dataset| -> f64 {
            a.trajectories
                .iter()
                .zip(&b.trajectories)
                .flat_map(|(x, y)| x.samples.iter().zip(&y.samples))
                .map(|(s, t)| s.loc.dist(&t.loc))
                .sum::<f64>()
        };
        let w = disp(&d, &w4m(&d, &W4mConfig { k: 5, delta: 100.0 }));
        let g = disp(&d, &glove(&d, &GloveConfig { k: 5 }));
        assert!(g > w, "GLOVE displacement {g} should exceed W4M {w}");
    }

    #[test]
    fn klt_runs_and_preserves_counts() {
        let d = random_ds(20, 10, 6);
        let out = klt(&d, &KltConfig::default());
        assert_eq!(out.len(), d.len());
        for (o, a) in d.trajectories.iter().zip(&out.trajectories) {
            assert_eq!(o.id, a.id);
            assert_eq!(o.len(), a.len());
        }
    }

    #[test]
    fn klt_merges_until_diverse() {
        // One tight blob: few categories per small cluster → forced merges.
        let mut rng = StdRng::seed_from_u64(7);
        let trajs = (0..12)
            .map(|id| {
                Trajectory::new(
                    id as u64,
                    (0..6)
                        .map(|i| {
                            Sample::new(
                                Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..30.0)),
                                i as i64,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let d = Dataset::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), trajs);
        // Demanding l with a coarse grid: everything collapses into one
        // cluster rather than panicking.
        let out = klt(&d, &KltConfig { k: 3, l: 4, t: 0.2, num_categories: 8, granularity: 8 });
        assert_eq!(out.len(), d.len());
    }

    #[test]
    fn single_cluster_when_n_less_than_2k() {
        let d = random_ds(7, 5, 8);
        let clusters = cluster_by_k(&d, 5);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 7);
    }
}

//! Generative DP baselines: DPT and AdaTrace.
//!
//! Both synthesize entirely new trajectories from differentially private
//! mobility models — the paper's point of comparison for "strong privacy
//! at record-level-truthfulness cost" (INF ≈ 0.99 for DPT in Table II).
//!
//! Simplifications relative to the original systems:
//!
//! * **DPT** (He et al., VLDB'15) uses hierarchical reference systems at
//!   multiple speeds; here a single grid resolution feeds the prefix
//!   tree, which is the core of the method (noisy-count prefix tree →
//!   sampled synthetic traces).
//! * **AdaTrace** (Gursoy et al., CCS'18) learns four noisy features —
//!   density grid, Markov transitions, trip distribution, and length
//!   distribution — splitting ε between them, then synthesizes traces
//!   that respect all four; this reimplementation keeps that exact
//!   four-feature split but uses a uniform rather than density-adaptive
//!   grid.

use rand::Rng;
use std::collections::HashMap;
use trajdp_mech::LaplaceMechanism;
use trajdp_model::{Dataset, GridLevel, Point, Sample, Trajectory};

/// DPT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DptConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Grid granularity of the reference system.
    pub granularity: u32,
    /// Prefix-tree depth (maximum learned n-gram order).
    pub depth: usize,
    /// Length of each synthetic trajectory.
    pub synthetic_len: usize,
}

impl Default for DptConfig {
    fn default() -> Self {
        Self { epsilon: 1.0, granularity: 32, depth: 4, synthetic_len: 60 }
    }
}

type Cell = (u32, u32);

fn cell_of(grid: &GridLevel, p: &Point) -> Cell {
    let c = grid.locate(p);
    (c.col, c.row)
}

fn cell_center(grid: &GridLevel, c: Cell) -> Point {
    grid.cell_rect(trajdp_model::CellId::new(grid.level, c.0, c.1)).center()
}

/// A prefix tree over cell sequences with Laplace-noised counts.
#[derive(Debug, Default)]
struct PrefixTree {
    /// Children and their (noisy) counts per prefix.
    children: HashMap<Vec<Cell>, Vec<(Cell, f64)>>,
}

impl PrefixTree {
    fn build<R: Rng + ?Sized>(
        ds: &Dataset,
        grid: &GridLevel,
        depth: usize,
        epsilon: f64,
        rng: &mut R,
    ) -> Self {
        // Each trajectory contributes to every tree level once per
        // n-gram; budget is split evenly across levels, as in DPT.
        let mech = LaplaceMechanism::new(epsilon / depth as f64, 1.0).expect("validated by caller");
        let mut counts: HashMap<Vec<Cell>, HashMap<Cell, f64>> = HashMap::new();
        for t in &ds.trajectories {
            let mut cells: Vec<Cell> = Vec::with_capacity(t.len());
            for s in &t.samples {
                let c = cell_of(grid, &s.loc);
                if cells.last() != Some(&c) {
                    cells.push(c);
                }
            }
            for level in 1..=depth {
                for w in cells.windows(level) {
                    let (prefix, next) = w.split_at(level - 1);
                    *counts.entry(prefix.to_vec()).or_default().entry(next[0]).or_insert(0.0) +=
                        1.0;
                }
            }
        }
        // Sort prefixes (and children) so RNG consumption order — and
        // therefore the synthetic output — is deterministic per seed.
        let mut ordered: Vec<(Vec<Cell>, HashMap<Cell, f64>)> = counts.into_iter().collect();
        ordered.sort_by(|a, b| a.0.cmp(&b.0));
        let mut children = HashMap::with_capacity(ordered.len());
        for (prefix, next) in ordered {
            let mut next: Vec<(Cell, f64)> = next.into_iter().collect();
            next.sort_by_key(|a| a.0);
            let noisy: Vec<(Cell, f64)> = next
                .into_iter()
                .map(|(c, v)| (c, mech.randomize(v, rng).max(0.0)))
                .filter(|&(_, v)| v > 0.0)
                .collect();
            if !noisy.is_empty() {
                children.insert(prefix, noisy);
            }
        }
        Self { children }
    }

    /// Samples the next cell given the longest matching suffix of the
    /// history.
    fn sample_next<R: Rng + ?Sized>(&self, history: &[Cell], rng: &mut R) -> Option<Cell> {
        for start in 0..=history.len() {
            let suffix = &history[start..];
            if let Some(options) = self.children.get(suffix) {
                let total: f64 = options.iter().map(|&(_, w)| w).sum();
                if total <= 0.0 {
                    continue;
                }
                let mut roll = rng.gen::<f64>() * total;
                for &(c, w) in options {
                    roll -= w;
                    if roll <= 0.0 {
                        return Some(c);
                    }
                }
                return options.last().map(|&(c, _)| c);
            }
        }
        None
    }
}

/// DPT: builds a noisy prefix tree over grid-cell sequences and samples
/// `|D|` synthetic trajectories from it. Output trajectories reuse the
/// original ids/timestamps grid but share no samples with any real
/// trajectory except by coincidence.
pub fn dpt<R: Rng + ?Sized>(ds: &Dataset, cfg: &DptConfig, rng: &mut R) -> Dataset {
    assert!(cfg.depth >= 2, "prefix tree needs depth at least 2");
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    let grid = GridLevel::new(ds.domain, cfg.granularity, 0);
    let tree = PrefixTree::build(ds, &grid, cfg.depth, cfg.epsilon, rng);
    let trajectories = ds
        .trajectories
        .iter()
        .map(|orig| {
            let mut cells: Vec<Cell> = Vec::with_capacity(cfg.synthetic_len);
            if let Some(first) = tree.sample_next(&[], rng) {
                cells.push(first);
            }
            while cells.len() < cfg.synthetic_len {
                let from = cells.len().saturating_sub(cfg.depth - 1);
                match tree.sample_next(&cells[from..], rng) {
                    Some(c) => cells.push(c),
                    None => break,
                }
            }
            let samples = cells
                .into_iter()
                .enumerate()
                .map(|(i, c)| Sample::new(cell_center(&grid, c), i as i64 * 60))
                .collect();
            Trajectory::new(orig.id, samples)
        })
        .collect();
    Dataset::new(ds.domain, trajectories)
}

/// AdaTrace parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaTraceConfig {
    /// Total privacy budget ε, split evenly across the four features.
    pub epsilon: f64,
    /// Grid granularity.
    pub granularity: u32,
}

impl Default for AdaTraceConfig {
    fn default() -> Self {
        Self { epsilon: 1.0, granularity: 24 }
    }
}

/// AdaTrace: learns four ε/4-DP features (density, first-order Markov
/// transitions, trip distribution, length distribution) and synthesizes
/// one trace per original object.
pub fn adatrace<R: Rng + ?Sized>(ds: &Dataset, cfg: &AdaTraceConfig, rng: &mut R) -> Dataset {
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    let grid = GridLevel::new(ds.domain, cfg.granularity, 0);
    let mech = LaplaceMechanism::new(cfg.epsilon / 4.0, 1.0).expect("validated above");

    // Feature 1: density (noisy visit counts per cell).
    let mut density: HashMap<Cell, f64> = HashMap::new();
    for t in &ds.trajectories {
        for s in &t.samples {
            *density.entry(cell_of(&grid, &s.loc)).or_insert(0.0) += 1.0;
        }
    }
    let mut density: Vec<(Cell, f64)> = density.into_iter().collect();
    density.sort_by_key(|a| a.0);
    let density_vec: Vec<(Cell, f64)> = density
        .into_iter()
        .map(|(c, v)| (c, mech.randomize(v, rng).max(0.0)))
        .filter(|&(_, v)| v > 0.0)
        .collect();

    // Feature 2: Markov transitions.
    let mut transitions: HashMap<Cell, HashMap<Cell, f64>> = HashMap::new();
    for t in &ds.trajectories {
        let mut prev: Option<Cell> = None;
        for s in &t.samples {
            let c = cell_of(&grid, &s.loc);
            if let Some(p) = prev {
                if p != c {
                    *transitions.entry(p).or_default().entry(c).or_insert(0.0) += 1.0;
                }
            }
            prev = Some(c);
        }
    }
    let mut transitions_ordered: Vec<(Cell, HashMap<Cell, f64>)> =
        transitions.into_iter().collect();
    transitions_ordered.sort_by_key(|a| a.0);
    let transitions: HashMap<Cell, Vec<(Cell, f64)>> = transitions_ordered
        .into_iter()
        .map(|(from, tos)| {
            let mut tos: Vec<(Cell, f64)> = tos.into_iter().collect();
            tos.sort_by_key(|a| a.0);
            let noisy: Vec<(Cell, f64)> = tos
                .into_iter()
                .map(|(c, v)| (c, mech.randomize(v, rng).max(0.0)))
                .filter(|&(_, v)| v > 0.0)
                .collect();
            (from, noisy)
        })
        .collect();

    // Feature 3: trip (start, end) distribution.
    let mut trips: HashMap<(Cell, Cell), f64> = HashMap::new();
    for t in &ds.trajectories {
        if let Some((s, e)) = t.trip() {
            *trips.entry((cell_of(&grid, &s), cell_of(&grid, &e))).or_insert(0.0) += 1.0;
        }
    }
    let mut trips: Vec<((Cell, Cell), f64)> = trips.into_iter().collect();
    trips.sort_by_key(|a| a.0);
    let trips: Vec<((Cell, Cell), f64)> = trips
        .into_iter()
        .map(|(k, v)| (k, mech.randomize(v, rng).max(0.0)))
        .filter(|&(_, v)| v > 0.0)
        .collect();

    // Feature 4: length distribution (noisy histogram of |τ|).
    let max_len = ds.trajectories.iter().map(Trajectory::len).max().unwrap_or(1).max(2);
    let mut lengths = vec![0.0f64; max_len + 1];
    for t in &ds.trajectories {
        lengths[t.len()] += 1.0;
    }
    let lengths: Vec<f64> = lengths.into_iter().map(|v| mech.randomize(v, rng).max(0.0)).collect();

    let sample_weighted = |options: &[(Cell, f64)], rng: &mut R| -> Option<Cell> {
        let total: f64 = options.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut roll = rng.gen::<f64>() * total;
        for &(c, w) in options {
            roll -= w;
            if roll <= 0.0 {
                return Some(c);
            }
        }
        options.last().map(|&(c, _)| c)
    };
    let trajectories = ds
        .trajectories
        .iter()
        .map(|orig| {
            // Sample a trip.
            let trip_total: f64 = trips.iter().map(|&(_, w)| w).sum();
            let (start, end) = if trip_total > 0.0 {
                let mut roll = rng.gen::<f64>() * trip_total;
                let mut chosen = trips[0].0;
                for &(k, w) in &trips {
                    roll -= w;
                    if roll <= 0.0 {
                        chosen = k;
                        break;
                    }
                }
                chosen
            } else if let Some(c) = sample_weighted(&density_vec, rng) {
                (c, c)
            } else {
                ((0, 0), (0, 0))
            };
            // Sample a length.
            let len_total: f64 = lengths.iter().sum();
            let target_len = if len_total > 0.0 {
                let mut roll = rng.gen::<f64>() * len_total;
                let mut l = 2usize;
                for (i, &w) in lengths.iter().enumerate() {
                    roll -= w;
                    if roll <= 0.0 {
                        l = i;
                        break;
                    }
                }
                l.max(2)
            } else {
                orig.len().max(2)
            };
            // Markov walk from start, nudged toward the trip end.
            let mut cells = vec![start];
            while cells.len() < target_len {
                let here = *cells.last().expect("non-empty");
                if here == end && cells.len() > target_len / 2 {
                    break;
                }
                let next = transitions
                    .get(&here)
                    .and_then(|opts| {
                        // Bias: among sampled candidates prefer the one
                        // closest to the destination half the time.
                        if rng.gen::<f64>() < 0.5 {
                            opts.iter()
                                .min_by(|a, b| {
                                    let da = (a.0 .0 as i64 - end.0 as i64).abs()
                                        + (a.0 .1 as i64 - end.1 as i64).abs();
                                    let db = (b.0 .0 as i64 - end.0 as i64).abs()
                                        + (b.0 .1 as i64 - end.1 as i64).abs();
                                    da.cmp(&db)
                                })
                                .map(|&(c, _)| c)
                        } else {
                            sample_weighted(opts, rng)
                        }
                    })
                    .or_else(|| sample_weighted(&density_vec, rng));
                match next {
                    Some(c) => cells.push(c),
                    None => break,
                }
            }
            let samples = cells
                .into_iter()
                .enumerate()
                .map(|(i, c)| Sample::new(cell_center(&grid, c), i as i64 * 60))
                .collect();
            Trajectory::new(orig.id, samples)
        })
        .collect();
    Dataset::new(ds.domain, trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajdp_model::Rect;

    fn corridor_ds(n: usize, len: usize) -> Dataset {
        // Everyone commutes along the x axis: strong transition structure.
        let trajs = (0..n)
            .map(|id| {
                Trajectory::new(
                    id as u64,
                    (0..len)
                        .map(|i| {
                            Sample::new(
                                Point::new(50.0 + i as f64 * 30.0, 500.0 + (id % 3) as f64 * 10.0),
                                i as i64 * 60,
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        Dataset::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), trajs)
    }

    #[test]
    fn dpt_produces_synthetic_traces_of_requested_shape() {
        let d = corridor_ds(20, 20);
        let mut rng = StdRng::seed_from_u64(1);
        let out = dpt(&d, &DptConfig { synthetic_len: 15, ..Default::default() }, &mut rng);
        assert_eq!(out.len(), d.len());
        for t in &out.trajectories {
            assert!(t.len() <= 15);
            assert!(!t.is_empty(), "tree over a populated dataset must generate");
            assert!(t.samples.windows(2).all(|w| w[0].t < w[1].t));
            // Samples are cell centres inside the domain.
            for s in &t.samples {
                assert!(d.domain.contains(&s.loc));
            }
        }
    }

    #[test]
    fn dpt_follows_learned_transitions() {
        // In a left-to-right corridor, synthetic traces should also move
        // predominantly left-to-right.
        let d = corridor_ds(40, 25);
        let mut rng = StdRng::seed_from_u64(2);
        let out = dpt(&d, &DptConfig { epsilon: 10.0, ..Default::default() }, &mut rng);
        let mut forward = 0usize;
        let mut backward = 0usize;
        for t in &out.trajectories {
            for w in t.samples.windows(2) {
                if w[1].loc.x > w[0].loc.x {
                    forward += 1;
                } else if w[1].loc.x < w[0].loc.x {
                    backward += 1;
                }
            }
        }
        assert!(forward > backward * 3, "forward {forward} vs backward {backward}");
    }

    #[test]
    fn dpt_destroys_record_truthfulness() {
        // The INF ≈ 0.99 phenomenon: synthetic points rarely coincide
        // with any original sample of the same object.
        let d = corridor_ds(20, 20);
        let mut rng = StdRng::seed_from_u64(3);
        let out = dpt(&d, &DptConfig::default(), &mut rng);
        let mut kept = 0usize;
        let mut total = 0usize;
        for (o, a) in d.trajectories.iter().zip(&out.trajectories) {
            for s in &o.samples {
                total += 1;
                if a.passes_through(s.loc.key()) {
                    kept += 1;
                }
            }
        }
        assert!(
            (kept as f64 / total as f64) < 0.2,
            "synthetic data should retain almost no original points"
        );
    }

    #[test]
    fn adatrace_respects_domain_and_count() {
        let d = corridor_ds(25, 20);
        let mut rng = StdRng::seed_from_u64(4);
        let out = adatrace(&d, &AdaTraceConfig::default(), &mut rng);
        assert_eq!(out.len(), d.len());
        for t in &out.trajectories {
            assert!(!t.is_empty());
            for s in &t.samples {
                assert!(d.domain.contains(&s.loc));
            }
        }
    }

    #[test]
    fn adatrace_length_distribution_roughly_preserved() {
        let d = corridor_ds(40, 20);
        let mut rng = StdRng::seed_from_u64(5);
        let out = adatrace(&d, &AdaTraceConfig { epsilon: 20.0, ..Default::default() }, &mut rng);
        let avg: f64 =
            out.trajectories.iter().map(|t| t.len() as f64).sum::<f64>() / out.len() as f64;
        assert!((avg - 20.0).abs() < 8.0, "synthetic length {avg} should be near the original 20");
    }

    #[test]
    fn deterministic_given_rng() {
        let d = corridor_ds(10, 15);
        let a = dpt(&d, &DptConfig::default(), &mut StdRng::seed_from_u64(9));
        let b = dpt(&d, &DptConfig::default(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "depth at least 2")]
    fn shallow_tree_panics() {
        let d = corridor_ds(5, 5);
        dpt(&d, &DptConfig { depth: 1, ..Default::default() }, &mut StdRng::seed_from_u64(0));
    }
}

//! Frequency statistics and signature extraction (§III-B1).
//!
//! For a point `p` in trajectory `τ` of dataset `D`:
//!
//! * **PF** `f_p` — occurrences of `p` in `τ`; representativeness is
//!   `f_p / |τ|`.
//! * **TF** `l_p` — trajectories of `D` passing through `p`;
//!   distinctiveness is `log(|D| / l_p)`.
//!
//! Each point is weighted by the product of both; the top-`m` weighted
//! distinct points of each trajectory form its *signature* `s_m(τ)`, and
//! the union of all signatures is the candidate set
//! `P = {p₁, …, p_d}` that both mechanisms perturb.

use std::collections::HashMap;
use trajdp_model::{Dataset, PointKey};

/// One signature point of a trajectory, with its statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureEntry {
    /// The location.
    pub point: PointKey,
    /// Point frequency `f_p` within the owning trajectory.
    pub pf: usize,
    /// Trajectory frequency `l_p` within the dataset.
    pub tf: usize,
    /// Combined weight: `(f_p/|τ|) · log(|D|/l_p)`.
    pub weight: f64,
}

/// The full frequency analysis of a dataset for a given signature size.
///
/// # Examples
///
/// ```
/// use trajdp_core::freq::FrequencyAnalysis;
/// use trajdp_model::{Dataset, Point, Sample, Trajectory};
///
/// // Object 0 haunts (1, 0); (5, 0) is a hotspot everyone visits.
/// let mk = |id, xs: &[f64]| Trajectory::new(id, xs.iter().enumerate()
///     .map(|(i, &x)| Sample::new(Point::new(x, 0.0), i as i64)).collect());
/// let ds = Dataset::from_trajectories(vec![
///     mk(0, &[1.0, 5.0, 1.0, 1.0]),
///     mk(1, &[5.0, 3.0]),
///     mk(2, &[5.0, 7.0]),
/// ]);
/// let analysis = FrequencyAnalysis::compute(&ds, 1);
/// let top = &analysis.signatures[0][0];
/// assert_eq!(top.point, Point::new(1.0, 0.0).key()); // high PF, TF = 1
/// assert_eq!((top.pf, top.tf), (3, 1));
/// assert!(analysis.dimensionality() <= ds.len() * 1); // d ≤ |D|·m
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyAnalysis {
    /// Signature size `m`.
    pub m: usize,
    /// Per-trajectory signatures (index-aligned with the dataset),
    /// sorted by descending weight; at most `m` entries each.
    pub signatures: Vec<Vec<SignatureEntry>>,
    /// The candidate set `P`: every distinct point appearing in at least
    /// one signature, with its TF value.
    pub candidate_tf: HashMap<PointKey, usize>,
    /// Number of trajectories `|D|` at analysis time.
    pub dataset_size: usize,
}

impl FrequencyAnalysis {
    /// Runs the analysis: computes TF once over the dataset, then PF and
    /// weights per trajectory, extracting each top-`m` signature.
    pub fn compute(ds: &Dataset, m: usize) -> Self {
        assert!(m > 0, "signature size must be positive");
        let tf = ds.tf_table();
        let n = ds.len().max(1) as f64;
        let mut signatures = Vec::with_capacity(ds.len());
        for traj in &ds.trajectories {
            let mut pf: HashMap<PointKey, usize> = HashMap::new();
            for s in &traj.samples {
                *pf.entry(s.loc.key()).or_insert(0) += 1;
            }
            let len = traj.len().max(1) as f64;
            let mut entries: Vec<SignatureEntry> = pf
                // lint: allow(determinism): entries are sorted by (weight, point) below before anything reads them
                .into_iter()
                .map(|(point, f)| {
                    let l = *tf.get(&point).unwrap_or(&1);
                    let representativeness = f as f64 / len;
                    let distinctiveness = (n / l as f64).ln();
                    SignatureEntry {
                        point,
                        pf: f,
                        tf: l,
                        weight: representativeness * distinctiveness,
                    }
                })
                .collect();
            entries
                .sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.point.cmp(&b.point)));
            entries.truncate(m);
            signatures.push(entries);
        }
        let mut candidate_tf = HashMap::new();
        for sig in &signatures {
            for e in sig {
                candidate_tf.entry(e.point).or_insert(e.tf);
            }
        }
        Self { m, signatures, candidate_tf, dataset_size: ds.len() }
    }

    /// The candidate set `P` as a deterministically ordered vector
    /// (sorted by key so downstream iteration order is reproducible).
    pub fn candidate_points(&self) -> Vec<PointKey> {
        // lint: allow(determinism): collected then sorted on the next line; callers only ever see the sorted order
        let mut v: Vec<PointKey> = self.candidate_tf.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Dimensionality `d = |P|`.
    pub fn dimensionality(&self) -> usize {
        self.candidate_tf.len()
    }

    /// The signature of trajectory `i` as a point list.
    pub fn signature_points(&self, i: usize) -> Vec<PointKey> {
        self.signatures[i].iter().map(|e| e.point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Sample, Trajectory};

    fn p(x: f64) -> Point {
        Point::new(x, 0.0)
    }

    /// Dataset where (1,0) is object 0's personal haunt (PF 3, TF 1),
    /// (5,0) is a hotspot everyone visits, and the rest is noise.
    fn ds() -> Dataset {
        let mk = |id, xs: &[f64]| {
            Trajectory::new(
                id,
                xs.iter().enumerate().map(|(i, &x)| Sample::new(p(x), i as i64)).collect(),
            )
        };
        Dataset::from_trajectories(vec![
            mk(0, &[1.0, 5.0, 1.0, 2.0, 1.0]),
            mk(1, &[5.0, 3.0, 6.0]),
            mk(2, &[5.0, 7.0, 8.0]),
        ])
    }

    #[test]
    fn weights_prefer_high_pf_low_tf() {
        let fa = FrequencyAnalysis::compute(&ds(), 2);
        let sig0 = &fa.signatures[0];
        // (1,0): PF 3/5, TF 1 → weight (3/5)·ln(3) ≈ 0.659 — the top pick.
        assert_eq!(sig0[0].point, p(1.0).key());
        assert_eq!(sig0[0].pf, 3);
        assert_eq!(sig0[0].tf, 1);
        assert!((sig0[0].weight - 0.6 * 3f64.ln()).abs() < 1e-12);
        // The hotspot (5,0) has TF 3 → ln(1) = 0 weight; it must lose to
        // the unique point (2,0).
        assert_eq!(sig0[1].point, p(2.0).key());
    }

    #[test]
    fn hotspot_weight_is_zero() {
        let fa = FrequencyAnalysis::compute(&ds(), 3);
        for sig in &fa.signatures {
            for e in sig {
                if e.point == p(5.0).key() {
                    assert!(e.weight.abs() < 1e-12, "hotspot visited by all must weigh 0");
                }
            }
        }
    }

    #[test]
    fn signatures_truncate_to_m_and_sort_desc() {
        let fa = FrequencyAnalysis::compute(&ds(), 1);
        for sig in &fa.signatures {
            assert!(sig.len() <= 1);
        }
        let fa = FrequencyAnalysis::compute(&ds(), 10);
        for sig in &fa.signatures {
            assert!(sig.windows(2).all(|w| w[0].weight >= w[1].weight));
        }
    }

    #[test]
    fn candidate_set_is_union_of_signatures() {
        let fa = FrequencyAnalysis::compute(&ds(), 2);
        let pts = fa.candidate_points();
        assert_eq!(pts.len(), fa.dimensionality());
        for (i, _) in fa.signatures.iter().enumerate() {
            for k in fa.signature_points(i) {
                assert!(pts.contains(&k));
            }
        }
        // d ≤ |D| · m
        assert!(fa.dimensionality() <= 3 * 2);
    }

    #[test]
    fn candidate_order_is_deterministic() {
        let a = FrequencyAnalysis::compute(&ds(), 2).candidate_points();
        let b = FrequencyAnalysis::compute(&ds(), 2).candidate_points();
        assert_eq!(a, b);
    }

    #[test]
    fn tf_values_match_dataset() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 3);
        for (k, &tf) in &fa.candidate_tf {
            assert_eq!(tf, d.trajectory_frequency(*k));
        }
    }

    #[test]
    #[should_panic(expected = "signature size must be positive")]
    fn zero_m_panics() {
        FrequencyAnalysis::compute(&ds(), 0);
    }
}

//! The local PF randomization mechanism (Algorithm 2, §III-B3).
//!
//! For every trajectory, a list of `2m` points is selected: first the
//! trajectory's top-`m` signature points (which lie in `P` by
//! construction), then further points of the trajectory — preferring
//! other members of `P` — until the list holds `2m` entries.
//!
//! **Stage 1** perturbs the PF of the first `m` points with
//! `Lap(−f_k, 1/ε_L)` noise: the negative mean suppresses the signature
//! occurrences with high probability. **Stage 2** perturbs the next `m`
//! points with `Lap(−µ̄, 1/ε_L)` where `µ̄` is the mean noise actually
//! added in stage 1 — when stage 1 shrank the trajectory, `−µ̄` is
//! positive and stage 2 grows it back, stabilizing cardinality.
//!
//! Theorems 2–3 prove the non-zero mean does not weaken the ε_L-DP
//! guarantee (the guarantee depends only on the scale `1/ε_L`).

use crate::editor::TrajectoryEditor;
use crate::freq::FrequencyAnalysis;
use crate::indexkind::IndexKind;
use crate::stream::{stream_rng, PHASE_LOCAL};
use rand::Rng;
use std::collections::HashMap;
use trajdp_index::SearchStats;
use trajdp_mech::{round_count, Laplace, MechError};
use trajdp_model::{Dataset, PointKey, Rect, Trajectory};

/// Ablation switches for the local mechanism. Defaults reproduce the
/// paper's Algorithm 2 exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalOptions {
    /// Run stage 2 (the cardinality-compensating perturbation of the
    /// second `m` points). Disabling reproduces the "Stage-1 only"
    /// ablation discussed in §III-B3.
    pub stage2: bool,
    /// Use the classical zero-mean Laplace instead of the paper's
    /// non-trivial shifted Laplace (ablation of the mean-shift design).
    pub zero_mean: bool,
}

impl Default for LocalOptions {
    fn default() -> Self {
        Self { stage2: true, zero_mean: false }
    }
}

/// Perturbation plan for one trajectory: every selected point with its
/// original and perturbed PF.
#[derive(Debug, Clone, Default)]
pub struct PfPlan {
    /// `(point, original PF, perturbed PF)` in processing order; the
    /// first half is stage 1, the second stage 2.
    pub entries: Vec<(PointKey, usize, u64)>,
}

/// Outcome of one local-mechanism run over a dataset.
#[derive(Debug, Clone)]
pub struct LocalReport {
    /// Per-trajectory perturbation plans (index-aligned).
    pub plans: Vec<PfPlan>,
    /// Total utility loss of all intra-trajectory modifications.
    pub utility_loss: f64,
    /// Point insertions performed.
    pub insertions: usize,
    /// Point deletions performed.
    pub deletions: usize,
    /// Accumulated K-nearest-search work.
    pub search_stats: SearchStats,
}

/// Selects the `2m`-point list `PL(τ)` for trajectory slot `i`
/// (Algorithm 2 input): the top-`m` signature first, then remaining
/// distinct points preferring members of `P`, randomly ordered.
pub fn select_point_list<R: Rng + ?Sized>(
    traj: &Trajectory,
    analysis: &FrequencyAnalysis,
    slot: usize,
    rng: &mut R,
) -> Vec<PointKey> {
    let m = analysis.m;
    let mut list: Vec<PointKey> = analysis.signature_points(slot);
    list.truncate(m);
    // Distinct points of the trajectory not already selected.
    let mut in_p: Vec<PointKey> = Vec::new();
    let mut rest: Vec<PointKey> = Vec::new();
    let mut seen: std::collections::HashSet<PointKey> = list.iter().copied().collect();
    for s in &traj.samples {
        let k = s.loc.key();
        if seen.insert(k) {
            if analysis.candidate_tf.contains_key(&k) {
                in_p.push(k);
            } else {
                rest.push(k);
            }
        }
    }
    // Prefer other signature points (members of P), then random others.
    shuffle(&mut in_p, rng);
    shuffle(&mut rest, rng);
    for k in in_p.into_iter().chain(rest) {
        if list.len() >= 2 * m {
            break;
        }
        list.push(k);
    }
    list
}

fn shuffle<T, R: Rng + ?Sized>(v: &mut [T], rng: &mut R) {
    // Fisher–Yates; avoids pulling in rand's slice extension trait.
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

/// Draws the perturbed PF values for one trajectory (Algorithm 2,
/// lines 2–16) without modifying it.
pub fn perturb_pf<R: Rng + ?Sized>(
    traj: &Trajectory,
    point_list: &[PointKey],
    m: usize,
    epsilon: f64,
    opts: LocalOptions,
    rng: &mut R,
) -> Result<PfPlan, MechError> {
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(MechError::NonPositiveEpsilon { epsilon });
    }
    let scale = 1.0 / epsilon; // sensitivity of the point-counting query is 1
    let mut pf: HashMap<PointKey, usize> = HashMap::new();
    for s in &traj.samples {
        *pf.entry(s.loc.key()).or_insert(0) += 1;
    }
    let mut entries = Vec::with_capacity(point_list.len());
    // Stage 1: top-m points, Lap(−f_k, 1/ε).
    let stage1 = &point_list[..m.min(point_list.len())];
    let mut noise_sum = 0.0;
    for &p in stage1 {
        let f = *pf.get(&p).unwrap_or(&0);
        let mean = if opts.zero_mean { 0.0 } else { -(f as f64) };
        let eta = Laplace::new(mean, scale)?.sample(rng);
        let f_star = round_count(f as f64 + eta);
        noise_sum += f_star as f64 - f as f64; // the *actual* applied noise
        entries.push((p, f, f_star));
    }
    let mu_bar = if stage1.is_empty() { 0.0 } else { noise_sum / stage1.len() as f64 };
    // Stage 2: remaining m points, Lap(−µ̄, 1/ε).
    if opts.stage2 {
        for &p in point_list.iter().skip(m).take(m) {
            let f = *pf.get(&p).unwrap_or(&0);
            let mean = if opts.zero_mean { 0.0 } else { -mu_bar };
            let eta = Laplace::new(mean, scale)?.sample(rng);
            let f_star = round_count(f as f64 + eta);
            entries.push((p, f, f_star));
        }
    }
    Ok(PfPlan { entries })
}

/// The local mechanism's outcome on a single trajectory: the smallest
/// unit of work a sharded executor schedules.
#[derive(Debug, Clone)]
pub struct LocalUnit {
    /// The modified trajectory.
    pub trajectory: Trajectory,
    /// The perturbation plan that was realized.
    pub plan: PfPlan,
    /// Utility loss of this trajectory's modifications.
    pub utility_loss: f64,
    /// Point insertions performed.
    pub insertions: usize,
    /// Point deletions performed.
    pub deletions: usize,
    /// K-nearest-search work of this trajectory's edits.
    pub search_stats: SearchStats,
}

/// Runs the local mechanism on one trajectory (point-list selection, PF
/// perturbation, intra-trajectory modification). Deletions run before
/// insertions so freshly inserted occurrences are never re-deleted.
// The unit signature mirrors Algorithm 2's inputs one-to-one; bundling
// them into a struct would only add indirection at every shard call.
#[allow(clippy::too_many_arguments)]
pub fn local_unit<R: Rng + ?Sized>(
    traj: &Trajectory,
    analysis: &FrequencyAnalysis,
    slot: usize,
    epsilon: f64,
    kind: IndexKind,
    opts: LocalOptions,
    domain: Rect,
    rng: &mut R,
) -> Result<LocalUnit, MechError> {
    let list = select_point_list(traj, analysis, slot, rng);
    let plan = perturb_pf(traj, &list, analysis.m, epsilon, opts, rng)?;
    let mut editor = TrajectoryEditor::new(traj.clone(), kind, domain);
    for &(p, f, f_star) in &plan.entries {
        if (f_star as usize) < f {
            editor.delete_occurrences(p, f - f_star as usize);
        }
    }
    for &(p, f, f_star) in &plan.entries {
        if f_star as usize > f {
            editor.insert_occurrences(p.to_point(), f_star as usize - f);
        }
    }
    Ok(LocalUnit {
        utility_loss: editor.loss,
        insertions: editor.insertions,
        deletions: editor.deletions,
        search_stats: editor.stats,
        trajectory: editor.into_trajectory(),
        plan,
    })
}

/// [`local_unit`] drawing from the trajectory's **own RNG stream**
/// `(root_seed, PHASE_LOCAL, slot)` — the entry point both the serial
/// pipeline and the sharded executor use, making the result independent
/// of processing order and shard boundaries.
#[allow(clippy::too_many_arguments)]
pub fn local_unit_streamed(
    traj: &Trajectory,
    analysis: &FrequencyAnalysis,
    slot: usize,
    epsilon: f64,
    kind: IndexKind,
    opts: LocalOptions,
    domain: Rect,
    root_seed: u64,
) -> Result<LocalUnit, MechError> {
    let mut rng = stream_rng(root_seed, PHASE_LOCAL, slot as u64);
    local_unit(traj, analysis, slot, epsilon, kind, opts, domain, &mut rng)
}

/// Merges per-trajectory units (in slot order) into a dataset and an
/// aggregate report. Accumulation order is fixed — slot 0 first — so
/// float sums are identical however the units were produced.
pub fn merge_local_units(domain: Rect, units: Vec<LocalUnit>) -> (Dataset, LocalReport) {
    let mut report = LocalReport {
        plans: Vec::with_capacity(units.len()),
        utility_loss: 0.0,
        insertions: 0,
        deletions: 0,
        search_stats: SearchStats::default(),
    };
    let mut out = Vec::with_capacity(units.len());
    for u in units {
        report.utility_loss += u.utility_loss;
        report.insertions += u.insertions;
        report.deletions += u.deletions;
        report.search_stats.cells_visited += u.search_stats.cells_visited;
        report.search_stats.segments_checked += u.search_stats.segments_checked;
        report.plans.push(u.plan);
        out.push(u.trajectory);
    }
    (Dataset::new(domain, out), report)
}

/// Runs the full local mechanism over the dataset with a single shared
/// generator (the paper's presentation of Algorithm 2).
pub fn apply_local<R: Rng + ?Sized>(
    ds: &Dataset,
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    kind: IndexKind,
    opts: LocalOptions,
    rng: &mut R,
) -> Result<(Dataset, LocalReport), MechError> {
    let mut units = Vec::with_capacity(ds.len());
    for (slot, traj) in ds.trajectories.iter().enumerate() {
        units.push(local_unit(traj, analysis, slot, epsilon, kind, opts, ds.domain, rng)?);
    }
    Ok(merge_local_units(ds.domain, units))
}

/// [`apply_local`] with per-trajectory RNG streams — order-independent,
/// so a sharded executor reproduces it exactly.
pub fn apply_local_streamed(
    ds: &Dataset,
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    kind: IndexKind,
    opts: LocalOptions,
    root_seed: u64,
) -> Result<(Dataset, LocalReport), MechError> {
    let mut units = Vec::with_capacity(ds.len());
    for (slot, traj) in ds.trajectories.iter().enumerate() {
        units.push(local_unit_streamed(
            traj, analysis, slot, epsilon, kind, opts, ds.domain, root_seed,
        )?);
    }
    Ok(merge_local_units(ds.domain, units))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajdp_model::{Point, Sample};

    fn traj(id: u64, xs: &[f64]) -> Trajectory {
        Trajectory::new(
            id,
            xs.iter()
                .enumerate()
                .map(|(i, &x)| Sample::new(Point::new(x, (i % 3) as f64), i as i64 * 10))
                .collect(),
        )
    }

    fn ds() -> Dataset {
        Dataset::from_trajectories(vec![
            traj(0, &[1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 5.0, 1.0, 6.0, 7.0]),
            traj(1, &[10.0, 11.0, 12.0, 10.0, 13.0, 14.0]),
            traj(2, &[20.0, 21.0, 22.0, 23.0, 24.0, 25.0]),
        ])
    }

    #[test]
    fn point_list_starts_with_signature_and_has_no_duplicates() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let list = select_point_list(&d.trajectories[0], &fa, 0, &mut rng);
        let sig = fa.signature_points(0);
        assert_eq!(&list[..sig.len()], &sig[..]);
        let set: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), list.len(), "duplicate entries in PL(τ)");
        assert!(list.len() <= 2 * fa.m);
    }

    #[test]
    fn point_list_saturates_on_short_trajectories() {
        let d = Dataset::from_trajectories(vec![traj(0, &[1.0, 2.0, 1.0])]);
        let fa = FrequencyAnalysis::compute(&d, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let list = select_point_list(&d.trajectories[0], &fa, 0, &mut rng);
        // Only three distinct points exist (the y coordinate varies), far
        // fewer than 2m = 10 — the list saturates at the distinct count.
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn stage1_suppresses_signature_frequencies() {
        // With the shifted Laplace, stage-1 noisy PF should be ≈ 0 on
        // average (noise centred at −f_k).
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let t = &d.trajectories[0];
        let list = select_point_list(t, &fa, 0, &mut rng);
        let mut suppressed = 0usize;
        let runs = 300;
        for _ in 0..runs {
            let plan = perturb_pf(t, &list, 2, 2.0, LocalOptions::default(), &mut rng).unwrap();
            let (_, f, f_star) = plan.entries[0];
            assert!(f > 0);
            if (f_star as usize) < f {
                suppressed += 1;
            }
        }
        assert!(
            suppressed as f64 / runs as f64 > 0.6,
            "stage 1 should usually shrink the top signature PF ({suppressed}/{runs})"
        );
    }

    #[test]
    fn zero_mean_ablation_is_symmetric() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let t = &d.trajectories[0];
        let list = select_point_list(t, &fa, 0, &mut rng);
        let opts = LocalOptions { zero_mean: true, ..Default::default() };
        let (mut up, mut down) = (0usize, 0usize);
        for _ in 0..400 {
            let plan = perturb_pf(t, &list, 2, 1.0, opts, &mut rng).unwrap();
            let (_, f, f_star) = plan.entries[0];
            match (f_star as usize).cmp(&f) {
                std::cmp::Ordering::Greater => up += 1,
                std::cmp::Ordering::Less => down += 1,
                _ => {}
            }
        }
        // Zero-mean noise must go both ways in comparable proportion.
        let ratio = up as f64 / (up + down).max(1) as f64;
        assert!(ratio > 0.3 && ratio < 0.7, "zero-mean should be symmetric, got {ratio}");
    }

    #[test]
    fn stage2_disabled_halves_plan() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let t = &d.trajectories[0];
        let list = select_point_list(t, &fa, 0, &mut rng);
        let full = perturb_pf(t, &list, 2, 1.0, LocalOptions::default(), &mut rng).unwrap();
        let s1 = perturb_pf(
            t,
            &list,
            2,
            1.0,
            LocalOptions { stage2: false, ..Default::default() },
            &mut rng,
        )
        .unwrap();
        assert!(s1.entries.len() < full.entries.len());
        assert_eq!(s1.entries.len(), 2);
    }

    #[test]
    fn apply_local_realizes_perturbed_pf() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let (out, report) =
            apply_local(&d, &fa, 0.5, IndexKind::default(), LocalOptions::default(), &mut rng)
                .unwrap();
        assert_eq!(out.len(), d.len());
        for (slot, plan) in report.plans.iter().enumerate() {
            for &(p, _, f_star) in &plan.entries {
                let realized = out.trajectories[slot].count_point(p);
                assert_eq!(
                    realized, f_star as usize,
                    "slot {slot} point {p:?}: wanted PF {f_star}, got {realized}"
                );
            }
        }
    }

    #[test]
    fn streamed_local_is_order_and_shard_invariant() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let (whole, report) =
            apply_local_streamed(&d, &fa, 0.5, IndexKind::default(), LocalOptions::default(), 77)
                .unwrap();
        // Recompute each trajectory in reverse order — per-slot streams
        // make the result identical.
        let mut units: Vec<LocalUnit> = (0..d.len())
            .rev()
            .map(|slot| {
                local_unit_streamed(
                    &d.trajectories[slot],
                    &fa,
                    slot,
                    0.5,
                    IndexKind::default(),
                    LocalOptions::default(),
                    d.domain,
                    77,
                )
                .unwrap()
            })
            .collect();
        units.reverse();
        let (merged, merged_report) = merge_local_units(d.domain, units);
        assert_eq!(merged, whole);
        assert_eq!(merged_report.utility_loss, report.utility_loss);
        assert_eq!(merged_report.insertions, report.insertions);
        assert_eq!(merged_report.deletions, report.deletions);
    }

    #[test]
    fn streamed_local_is_seed_sensitive() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let kind = IndexKind::default();
        let (a, _) = apply_local_streamed(&d, &fa, 0.5, kind, LocalOptions::default(), 1).unwrap();
        let (b, _) = apply_local_streamed(&d, &fa, 0.5, kind, LocalOptions::default(), 2).unwrap();
        assert_ne!(a, b, "different root seeds should perturb differently");
    }

    #[test]
    fn apply_local_rejects_bad_epsilon() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(apply_local(&d, &fa, 0.0, IndexKind::default(), LocalOptions::default(), &mut rng)
            .is_err());
    }

    #[test]
    fn stage2_preserves_cardinality_better_than_stage1_only() {
        // The "Importance of Stage-2" claim: with stage 2 the total point
        // count stays closer to the original than with stage 1 alone.
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let original: usize = d.total_points();
        let mut rng = StdRng::seed_from_u64(8);
        let runs = 30;
        let (mut dev_full, mut dev_s1) = (0i64, 0i64);
        for _ in 0..runs {
            let (full, _) =
                apply_local(&d, &fa, 1.0, IndexKind::default(), LocalOptions::default(), &mut rng)
                    .unwrap();
            let (s1, _) = apply_local(
                &d,
                &fa,
                1.0,
                IndexKind::default(),
                LocalOptions { stage2: false, ..Default::default() },
                &mut rng,
            )
            .unwrap();
            dev_full += (full.total_points() as i64 - original as i64).abs();
            dev_s1 += (s1.total_points() as i64 - original as i64).abs();
        }
        assert!(
            dev_full <= dev_s1,
            "stage 2 should stabilize cardinality (dev {dev_full} vs stage-1-only {dev_s1})"
        );
    }
}

//! A minimal scoped-thread chunked worker pool.
//!
//! The deterministic phases of the pipeline (the inter-trajectory
//! modification scans, the sharded TF perturbation) all reduce to the
//! same shape: cut a slice into contiguous near-equal chunks, evaluate a
//! pure function on each chunk concurrently, and combine the per-chunk
//! results in chunk order. [`map_chunks`] provides exactly that on std
//! scoped threads — no work stealing, no channels, no dependencies
//! beyond the vendored workspace crates — so results are a pure function
//! of `(items, f)` and never of thread scheduling.

/// Splits `len` items into at most `workers` contiguous chunks of
/// near-equal size, returned as `(start, end)` ranges covering `0..len`
/// exactly. With `len == 0` a single empty range is returned; a `workers`
/// of 0 is treated as 1.
pub fn chunk_ranges(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Applies `f` to each contiguous chunk of `items` on up to `workers`
/// scoped threads, returning the per-chunk results **in chunk order**.
///
/// `f` receives the chunk's starting offset within `items` and the chunk
/// itself. With `workers <= 1` (or a single chunk) `f` runs inline on
/// the calling thread, so the serial path pays no spawn cost and the
/// parallel path is observationally identical to it whenever `f` is
/// pure.
pub fn map_chunks<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = chunk_ranges(items.len(), workers);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|(lo, hi)| f(lo, &items[lo..hi])).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> =
            ranges.iter().map(|&(lo, hi)| s.spawn(move || f(lo, &items[lo..hi]))).collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 5, 7, 100] {
            for workers in [0usize, 1, 2, 3, 8, 200] {
                let chunks = chunk_ranges(len, workers);
                assert!(chunks.len() <= workers.max(1));
                let mut expected = 0;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expected, "len {len} workers {workers}");
                    assert!(hi >= lo);
                    expected = hi;
                }
                assert_eq!(expected, len, "len {len} workers {workers}");
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let chunks = chunk_ranges(10, 4);
        let sizes: Vec<usize> = chunks.iter().map(|&(lo, hi)| hi - lo).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_chunks_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        for workers in [0usize, 1, 2, 3, 8, 64] {
            let doubled: Vec<u64> =
                map_chunks(workers, &items, |_, chunk| chunk.iter().map(|x| x * 2).collect())
                    .into_iter()
                    .flat_map(|v: Vec<u64>| v)
                    .collect();
            assert_eq!(doubled, expected, "{workers} workers");
        }
    }

    #[test]
    fn map_chunks_reports_offsets() {
        let items = [0u8; 10];
        let offsets: Vec<usize> = map_chunks(3, &items, |lo, _| lo);
        assert_eq!(offsets, vec![0, 4, 7]);
    }

    #[test]
    fn map_chunks_on_empty_slice() {
        let items: [u32; 0] = [];
        let out: Vec<usize> = map_chunks(4, &items, |_, chunk| chunk.len());
        assert_eq!(out, vec![0]);
    }
}

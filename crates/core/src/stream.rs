//! Deterministic per-unit RNG stream derivation.
//!
//! The pipeline's randomness is split into independent streams, one per
//! *smallest parallelizable unit* — one stream per candidate point for
//! the global TF perturbation, one per trajectory for the local PF
//! mechanism. Each stream seed is derived from `(root seed, phase tag,
//! unit index)` with a SplitMix64-style mixer, so:
//!
//! * the serial pipeline and a sharded executor draw **identical noise**
//!   regardless of how units are grouped into shards or interleaved
//!   across threads, and
//! * the two phases of a combined model never share a stream even when
//!   they process the same unit index.
//!
//! This is the scheme `core::anonymize` itself uses, which is what makes
//! `trajdp_server`'s `anonymize_parallel` bit-identical to the serial
//! path at every worker count.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Phase tag for the global TF mechanism (one stream per candidate
/// point, indexed by position in the sorted candidate order).
pub const PHASE_GLOBAL: u64 = 0x6774_665F;

/// Phase tag for the local PF mechanism (one stream per trajectory,
/// indexed by dataset slot).
pub const PHASE_LOCAL: u64 = 0x6C70_665F;

/// Derives the seed of stream `unit` within `phase` from the root seed.
///
/// SplitMix64 finalizer over an odd-constant combination of the three
/// inputs; changing any input flips each output bit with probability
/// ~1/2, so neighbouring units get uncorrelated streams.
#[inline]
pub fn stream_seed(root: u64, phase: u64, unit: u64) -> u64 {
    let mut z = root
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(phase.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(unit.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator positioned at the start of stream `(root, phase, unit)`.
#[inline]
pub fn stream_rng(root: u64, phase: u64, unit: u64) -> StdRng {
    // lint: allow(rng-discipline): this is the sanctioned per-unit constructor every other site must call
    StdRng::seed_from_u64(stream_seed(root, phase, unit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(stream_seed(1, PHASE_LOCAL, 5), stream_seed(1, PHASE_LOCAL, 5));
        let mut a = stream_rng(1, PHASE_LOCAL, 5);
        let mut b = stream_rng(1, PHASE_LOCAL, 5);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ_across_inputs() {
        let base = stream_seed(42, PHASE_GLOBAL, 0);
        assert_ne!(base, stream_seed(43, PHASE_GLOBAL, 0), "root must matter");
        assert_ne!(base, stream_seed(42, PHASE_LOCAL, 0), "phase must matter");
        assert_ne!(base, stream_seed(42, PHASE_GLOBAL, 1), "unit must matter");
    }

    #[test]
    fn no_collisions_over_many_units() {
        let mut seen = std::collections::HashSet::new();
        for root in 0..8u64 {
            for phase in [PHASE_GLOBAL, PHASE_LOCAL] {
                for unit in 0..1000u64 {
                    assert!(
                        seen.insert(stream_seed(root, phase, unit)),
                        "collision at ({root}, {phase:#x}, {unit})"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbouring_units_decorrelated() {
        // Crude avalanche check: adjacent unit indices should differ in
        // roughly half their seed bits.
        let mut total = 0u32;
        let n = 256;
        for unit in 0..n {
            let a = stream_seed(7, PHASE_LOCAL, unit);
            let b = stream_seed(7, PHASE_LOCAL, unit + 1);
            total += (a ^ b).count_ones();
        }
        let mean = total as f64 / n as f64;
        assert!((24.0..40.0).contains(&mean), "mean flipped bits {mean}");
    }
}

//! The global TF randomization mechanism (Algorithm 1, §III-B2).
//!
//! A point-counting query "how many trajectories pass through `p`?" has
//! sensitivity 1 under dataset adjacency, so adding `Lap(1/ε_G)` noise to
//! every TF value of the candidate set `P` yields ε_G-DP. Noisy values
//! are rounded into `[0, |D|]` (post-processing), and the dataset is then
//! altered by inter-trajectory modification until it realizes the
//! perturbed distribution.

use crate::editor::DatasetEditor;
use crate::freq::FrequencyAnalysis;
use crate::indexkind::IndexKind;
use crate::stream::{stream_rng, PHASE_GLOBAL};
use rand::Rng;
use std::collections::HashMap;
use trajdp_index::SearchStats;
use trajdp_mech::{round_to_range, LaplaceMechanism, MechError};
use trajdp_model::{Dataset, PointKey};

/// Wall-clock breakdown of one [`realize_tf`] run. Pure observability:
/// the timings never feed back into the computation, so determinism and
/// worker-count invariance of the edits are untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Editor construction plus edit-step planning.
    pub build: std::time::Duration,
    /// Time spent applying TF increases.
    pub increase: std::time::Duration,
    /// Time spent applying TF decreases.
    pub decrease: std::time::Duration,
    /// End-to-end modification wall (covers build + increase + decrease
    /// plus report assembly).
    pub realize: std::time::Duration,
}

/// Outcome of one global-mechanism run.
#[derive(Debug, Clone)]
pub struct GlobalReport {
    /// For every candidate point: `(original TF, perturbed TF)`.
    pub tf_changes: HashMap<PointKey, (usize, u64)>,
    /// Total utility loss of the inter-trajectory modification.
    pub utility_loss: f64,
    /// Point insertions performed.
    pub insertions: usize,
    /// Point deletions performed.
    pub deletions: usize,
    /// Accumulated K-nearest-search work. Unlike every other field,
    /// this one is *not* worker-count invariant: chunked parallel scans
    /// prune differently than the serial heap, so the counters reflect
    /// the work actually done, not a canonical amount.
    pub search_stats: SearchStats,
    /// Wall-clock per modification stage (also not invariant — it
    /// measures this run's real elapsed time).
    pub timings: StageTimings,
}

/// Draws the perturbed TF distribution `L*` (Algorithm 1, lines 1–6)
/// without modifying any trajectory.
pub fn perturb_tf<R: Rng + ?Sized>(
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    rng: &mut R,
) -> Result<HashMap<PointKey, u64>, MechError> {
    let mech = LaplaceMechanism::new(epsilon, 1.0)?;
    let n = analysis.dataset_size as u64;
    let mut out = HashMap::with_capacity(analysis.candidate_tf.len());
    for p in analysis.candidate_points() {
        let l = analysis.candidate_tf[&p] as f64;
        let noisy = mech.randomize(l, rng);
        out.insert(p, round_to_range(noisy, 0, n));
    }
    Ok(out)
}

/// Perturbs the TF of one contiguous shard of the sorted candidate set
/// using **per-point RNG streams** derived from the root seed.
///
/// `candidates` must be a slice of [`FrequencyAnalysis::candidate_points`]
/// starting at position `first_index` of the full sorted order; each
/// point `j` draws from stream `(root_seed, PHASE_GLOBAL, j)`, so the
/// result is independent of how the candidate set is cut into shards.
pub fn perturb_tf_shard(
    analysis: &FrequencyAnalysis,
    candidates: &[PointKey],
    first_index: usize,
    epsilon: f64,
    root_seed: u64,
) -> Result<Vec<(PointKey, u64)>, MechError> {
    let mech = LaplaceMechanism::new(epsilon, 1.0)?;
    let n = analysis.dataset_size as u64;
    let mut out = Vec::with_capacity(candidates.len());
    for (offset, &p) in candidates.iter().enumerate() {
        let mut rng = stream_rng(root_seed, PHASE_GLOBAL, (first_index + offset) as u64);
        let l = analysis.candidate_tf[&p] as f64;
        let noisy = mech.randomize(l, &mut rng);
        out.push((p, round_to_range(noisy, 0, n)));
    }
    Ok(out)
}

/// Draws the full perturbed TF distribution with per-point streams —
/// the single-shard case of [`perturb_tf_shard`].
pub fn perturb_tf_streamed(
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    root_seed: u64,
) -> Result<HashMap<PointKey, u64>, MechError> {
    let candidates = analysis.candidate_points();
    Ok(perturb_tf_shard(analysis, &candidates, 0, epsilon, root_seed)?.into_iter().collect())
}

/// One planned inter-trajectory edit of [`realize_tf`].
enum EditStep {
    /// Raise the TF of the point by the given amount.
    Increase(PointKey, usize),
    /// Lower the TF of the point by the given amount.
    Decrease(PointKey, usize),
}

/// Inter-trajectory modification (`GlobalEdit`, Algorithm 1 line 7):
/// deterministically edits the dataset until it realizes `perturbed`.
///
/// This phase draws no randomness — given the perturbed targets it is a
/// pure function of the dataset, so it runs the same whether the targets
/// came from the serial or the sharded perturbation path, and it
/// parallelizes deterministically over `workers` threads: the exact-loss
/// candidate scans inside each edit are chunked (see
/// [`DatasetEditor`]), and consecutive TF decreases whose containing
/// trajectory sets are pairwise disjoint — whose edits provably cannot
/// interact — are scanned concurrently against a shared snapshot before
/// their deletions apply in candidate order. Any overlap falls back to
/// serial processing, so the output dataset, edit counts, and utility
/// loss are **byte-identical** to `workers == 1` at every worker count.
/// The one exception is [`GlobalReport::search_stats`]: the work
/// counters measure how much pruning each scan achieved, which
/// legitimately differs between the serial heap and the chunked scans.
pub fn realize_tf(
    ds: &Dataset,
    analysis: &FrequencyAnalysis,
    perturbed: &HashMap<PointKey, u64>,
    kind: IndexKind,
    bbox_pruning: bool,
    workers: usize,
) -> (Dataset, GlobalReport) {
    let workers = workers.max(1);
    // lint: allow(determinism): wall-clock feeds the timing report only; no edit decision reads it
    let realize_started = std::time::Instant::now();
    let mut editor = DatasetEditor::new(ds.trajectories.clone(), kind, ds.domain);
    editor.use_bbox_pruning = bbox_pruning;
    editor.workers = workers;
    let mut tf_changes = HashMap::with_capacity(perturbed.len());
    // Plan every edit up front. An edit touches only occurrences of its
    // own point, so it never changes another candidate's TF and the
    // deltas are fixed before any edit applies.
    let mut steps: Vec<EditStep> = Vec::new();
    for p in analysis.candidate_points() {
        let original = analysis.candidate_tf[&p];
        let target = perturbed[&p];
        tf_changes.insert(p, (original, target));
        let current = editor.tf(p) as u64;
        match target.cmp(&current) {
            std::cmp::Ordering::Greater => {
                steps.push(EditStep::Increase(p, (target - current) as usize));
            }
            std::cmp::Ordering::Less => {
                steps.push(EditStep::Decrease(p, (current - target) as usize));
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    let build = realize_started.elapsed();
    let mut increase_time = std::time::Duration::ZERO;
    let mut decrease_time = std::time::Duration::ZERO;
    let mut i = 0;
    while i < steps.len() {
        // lint: allow(determinism): wall-clock feeds the timing report only; no edit decision reads it
        let step_started = std::time::Instant::now();
        match steps[i] {
            EditStep::Increase(p, delta) => {
                // An insertion search may read any trajectory, so
                // increases never batch with neighbouring edits.
                editor.increase_tf(p.to_point(), delta);
                i += 1;
                increase_time += step_started.elapsed();
            }
            EditStep::Decrease(..) => {
                // Batch the maximal run of decreases with pairwise
                // disjoint containing sets: each one scans (and deletes
                // from) only trajectories containing its point, so
                // disjointness proves the scans see the same state as
                // under serial execution. A conflicting decrease closes
                // the batch and starts the next — the serial fallback.
                let mut batch: Vec<(PointKey, usize)> = Vec::new();
                let mut touched: std::collections::HashSet<usize> =
                    std::collections::HashSet::new();
                while let Some(&EditStep::Decrease(p, delta)) = steps.get(i) {
                    let containing = editor.trajectories_containing(p);
                    if !batch.is_empty() && containing.iter().any(|t| touched.contains(t)) {
                        break;
                    }
                    touched.extend(containing);
                    batch.push((p, delta));
                    i += 1;
                }
                if workers == 1 || batch.len() == 1 {
                    for (p, delta) in batch {
                        editor.decrease_tf(p, delta);
                    }
                } else {
                    // Scan all batch members concurrently against the
                    // shared snapshot, then apply in candidate order.
                    let snapshot = &editor;
                    let victims: Vec<Vec<usize>> =
                        crate::pool::map_chunks(workers, &batch, |_, chunk| {
                            chunk
                                .iter()
                                .map(|&(p, delta)| snapshot.decrease_victims(p, delta, 1))
                                .collect::<Vec<_>>()
                        })
                        .into_iter()
                        .flatten()
                        .collect();
                    for ((p, _), v) in batch.iter().zip(&victims) {
                        editor.apply_decrease(*p, v);
                    }
                }
                decrease_time += step_started.elapsed();
            }
        }
    }
    let report = GlobalReport {
        tf_changes,
        utility_loss: editor.loss,
        insertions: editor.insertions,
        deletions: editor.deletions,
        search_stats: editor.stats,
        timings: StageTimings {
            build,
            increase: increase_time,
            decrease: decrease_time,
            realize: realize_started.elapsed(),
        },
    };
    let out = Dataset::new(ds.domain, editor.into_trajectories());
    (out, report)
}

/// Runs the full global mechanism: TF perturbation followed by
/// inter-trajectory modification (`GlobalEdit`, Algorithm 1 line 7).
///
/// The returned dataset realizes the perturbed TF distribution for every
/// candidate point, up to saturation (a TF cannot exceed `|D|` or drop
/// below the available occurrences).
pub fn apply_global<R: Rng + ?Sized>(
    ds: &Dataset,
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    kind: IndexKind,
    bbox_pruning: bool,
    workers: usize,
    rng: &mut R,
) -> Result<(Dataset, GlobalReport), MechError> {
    let perturbed = perturb_tf(analysis, epsilon, rng)?;
    Ok(realize_tf(ds, analysis, &perturbed, kind, bbox_pruning, workers))
}

/// [`apply_global`] with per-point RNG streams instead of a shared
/// generator — the entry point the pipeline and the parallel executor
/// share, guaranteeing identical output for a fixed root seed.
pub fn apply_global_streamed(
    ds: &Dataset,
    analysis: &FrequencyAnalysis,
    epsilon: f64,
    kind: IndexKind,
    bbox_pruning: bool,
    workers: usize,
    root_seed: u64,
) -> Result<(Dataset, GlobalReport), MechError> {
    let perturbed = perturb_tf_streamed(analysis, epsilon, root_seed)?;
    Ok(realize_tf(ds, analysis, &perturbed, kind, bbox_pruning, workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trajdp_model::{Point, Sample, Trajectory};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64 * 10))
                .collect(),
        )
    }

    fn ds() -> Dataset {
        Dataset::from_trajectories(vec![
            traj(0, &[(0.0, 0.0), (10.0, 0.0), (0.0, 0.0), (20.0, 5.0)]),
            traj(1, &[(100.0, 100.0), (110.0, 100.0), (100.0, 100.0)]),
            traj(2, &[(200.0, 0.0), (210.0, 0.0), (220.0, 0.0)]),
            traj(3, &[(50.0, 50.0), (60.0, 50.0), (50.0, 50.0), (70.0, 55.0)]),
        ])
    }

    #[test]
    fn perturb_tf_stays_in_range() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny ε → huge noise; rounding must still clamp to [0, |D|].
        let p = perturb_tf(&fa, 0.01, &mut rng).unwrap();
        for &v in p.values() {
            assert!(v <= d.len() as u64);
        }
        assert_eq!(p.len(), fa.dimensionality());
    }

    #[test]
    fn perturb_tf_rejects_bad_epsilon() {
        let fa = FrequencyAnalysis::compute(&ds(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(perturb_tf(&fa, 0.0, &mut rng).is_err());
        assert!(perturb_tf(&fa, -1.0, &mut rng).is_err());
    }

    #[test]
    fn perturb_tf_concentrates_with_large_epsilon() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(5);
        // ε = 1000 → noise ≈ 0 → rounded TF equals the original.
        let p = perturb_tf(&fa, 1000.0, &mut rng).unwrap();
        for (k, &v) in &p {
            assert_eq!(v, fa.candidate_tf[k] as u64);
        }
    }

    #[test]
    fn apply_global_realizes_perturbed_tf() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let (out, report) =
            apply_global(&d, &fa, 0.5, IndexKind::default(), false, 1, &mut rng).unwrap();
        assert_eq!(out.len(), d.len());
        for (p, &(_, target)) in &report.tf_changes {
            let realized = out.trajectory_frequency(*p) as u64;
            assert_eq!(realized, target, "point {p:?} should have TF {target}, got {realized}");
        }
    }

    #[test]
    fn apply_global_with_zero_noise_is_identity_on_tf() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(17);
        let (out, report) =
            apply_global(&d, &fa, 1000.0, IndexKind::default(), false, 1, &mut rng).unwrap();
        assert_eq!(report.insertions, 0);
        assert_eq!(report.deletions, 0);
        assert_eq!(report.utility_loss, 0.0);
        assert_eq!(out, d);
    }

    #[test]
    fn sharded_perturbation_is_cut_invariant() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let candidates = fa.candidate_points();
        let whole = perturb_tf_streamed(&fa, 0.5, 99).unwrap();
        // Any shard boundary must reproduce the single-shard result.
        for cut in 0..=candidates.len() {
            let (a, b) = candidates.split_at(cut);
            let mut merged: HashMap<PointKey, u64> =
                perturb_tf_shard(&fa, a, 0, 0.5, 99).unwrap().into_iter().collect();
            merged.extend(perturb_tf_shard(&fa, b, cut, 0.5, 99).unwrap());
            assert_eq!(merged, whole, "cut at {cut}");
        }
    }

    #[test]
    fn streamed_apply_is_deterministic_and_seed_sensitive() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let (a, _) =
            apply_global_streamed(&d, &fa, 0.5, IndexKind::default(), false, 1, 5).unwrap();
        let (b, _) =
            apply_global_streamed(&d, &fa, 0.5, IndexKind::default(), false, 1, 5).unwrap();
        assert_eq!(a, b);
        let (c, _) =
            apply_global_streamed(&d, &fa, 0.5, IndexKind::default(), false, 1, 6).unwrap();
        assert_ne!(a, c, "different root seeds must perturb differently");
    }

    #[test]
    fn realize_tf_is_worker_count_invariant() {
        use trajdp_synth::{generate, GeneratorConfig};
        // A realistic world gives a candidate set with a healthy mix of
        // increases, decreases, and no-ops once perturbed.
        let world = generate(&GeneratorConfig::tdrive_profile(25, 50, 13));
        let d = &world.dataset;
        let fa = FrequencyAnalysis::compute(d, 4);
        let perturbed = perturb_tf_streamed(&fa, 0.4, 21).unwrap();
        for bbox in [false, true] {
            let (base, base_report) = realize_tf(d, &fa, &perturbed, IndexKind::default(), bbox, 1);
            for workers in [2usize, 3, 8] {
                let (out, report) =
                    realize_tf(d, &fa, &perturbed, IndexKind::default(), bbox, workers);
                assert_eq!(out, base, "bbox={bbox} workers={workers} dataset diverged");
                assert_eq!(report.insertions, base_report.insertions);
                assert_eq!(report.deletions, base_report.deletions);
                assert_eq!(report.utility_loss, base_report.utility_loss);
                assert_eq!(report.tf_changes, base_report.tf_changes);
            }
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let d = ds();
        let fa = FrequencyAnalysis::compute(&d, 2);
        let mut rng = StdRng::seed_from_u64(23);
        let (_, report) =
            apply_global(&d, &fa, 0.2, IndexKind::default(), false, 1, &mut rng).unwrap();
        // Any modification must be accounted: if points moved, loss ≥ 0
        // and the counters reflect edits.
        if report.insertions == 0 && report.deletions == 0 {
            assert_eq!(report.utility_loss, 0.0);
        }
        assert!(report.utility_loss.is_finite());
    }
}

//! The published models: `PureG`, `PureL`, and the composed `GL`
//! (§V-A "Frequency-based randomized DP models").
//!
//! Composition follows Theorem 1: the global mechanism spends ε_G, the
//! local mechanism ε_L, and the combined model is (ε_G + ε_L)-DP. The
//! two mechanisms are independent and may run in either order (the paper
//! notes exchangeable ordering); [`Model::Combined`] runs global first,
//! [`Model::CombinedLocalFirst`] the reverse.

use crate::freq::FrequencyAnalysis;
use crate::global::{apply_global_streamed, GlobalReport};
use crate::indexkind::IndexKind;
use crate::local::{apply_local_streamed, LocalOptions, LocalReport};
use std::time::Duration;
use trajdp_mech::{BudgetAccountant, MechError};
use trajdp_model::Dataset;

/// Which anonymization model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Global TF perturbation only (ε = ε_G).
    PureGlobal,
    /// Local PF perturbation only (ε = ε_L).
    PureLocal,
    /// Global then local (ε = ε_G + ε_L).
    Combined,
    /// Local then global (ε = ε_G + ε_L) — exchangeable ordering.
    CombinedLocalFirst,
}

/// Configuration shared by all models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqDpConfig {
    /// Signature size `m` (the paper uses 10).
    pub m: usize,
    /// Budget of the global mechanism, ε_G.
    pub eps_global: f64,
    /// Budget of the local mechanism, ε_L.
    pub eps_local: f64,
    /// Index used by the modification phase.
    pub index: IndexKind,
    /// Local-mechanism ablation switches.
    pub local_opts: LocalOptions,
    /// Use trajectory-bbox branch-and-bound in the global modification
    /// phase instead of the segment index (the §V-C future-work
    /// optimization; same output, different search).
    pub bbox_pruning: bool,
    /// Worker threads for the global modification phase (`GlobalEdit`).
    /// The phase draws no randomness, so the output is byte-identical at
    /// every value; `1` runs fully serial.
    pub workers: usize,
    /// RNG seed for reproducible runs.
    pub seed: u64,
}

impl Default for FreqDpConfig {
    fn default() -> Self {
        Self {
            m: 10,
            eps_global: 0.5,
            eps_local: 0.5,
            index: IndexKind::default(),
            local_opts: LocalOptions::default(),
            bbox_pruning: false,
            workers: 1,
            seed: 0xFD01,
        }
    }
}

/// Everything a model run produces.
#[derive(Debug, Clone)]
pub struct AnonymizedOutput {
    /// The anonymized dataset.
    pub dataset: Dataset,
    /// Total privacy budget spent (ε).
    pub epsilon_spent: f64,
    /// Global-mechanism report, when the model includes it.
    pub global: Option<GlobalReport>,
    /// Local-mechanism report, when the model includes it.
    pub local: Option<LocalReport>,
    /// Wall time of the global phase (perturbation + modification).
    pub global_time: Duration,
    /// Wall time of the local phase.
    pub local_time: Duration,
}

impl AnonymizedOutput {
    /// Total utility loss across both phases.
    pub fn utility_loss(&self) -> f64 {
        self.global.as_ref().map_or(0.0, |g| g.utility_loss)
            + self.local.as_ref().map_or(0.0, |l| l.utility_loss)
    }

    /// Total number of edit operations performed.
    pub fn total_edits(&self) -> usize {
        self.global.as_ref().map_or(0, |g| g.insertions + g.deletions)
            + self.local.as_ref().map_or(0, |l| l.insertions + l.deletions)
    }
}

/// Runs a model end to end through caller-supplied phase
/// implementations: the budget accounting, model dispatch, timing, and
/// output assembly shared by every execution backend.
///
/// The serial pipeline ([`anonymize`]) and `trajdp_server`'s sharded
/// executor both reduce to this driver with different `global` / `local`
/// closures, so budget semantics and report assembly can never diverge
/// between them. Each closure maps an input dataset (with the analysis
/// of the *original* dataset) to a modified dataset plus report.
pub fn run_model<G, L>(
    ds: &Dataset,
    model: Model,
    cfg: &FreqDpConfig,
    analysis: &FrequencyAnalysis,
    mut global_phase: G,
    mut local_phase: L,
) -> Result<AnonymizedOutput, MechError>
where
    G: FnMut(&Dataset, &FrequencyAnalysis) -> Result<(Dataset, GlobalReport), MechError>,
    L: FnMut(&Dataset, &FrequencyAnalysis) -> Result<(Dataset, LocalReport), MechError>,
{
    let total_budget = match model {
        Model::PureGlobal => cfg.eps_global,
        Model::PureLocal => cfg.eps_local,
        Model::Combined | Model::CombinedLocalFirst => cfg.eps_global + cfg.eps_local,
    };
    let mut accountant = BudgetAccountant::new(total_budget);

    let mut run_global = |input: &Dataset,
                          accountant: &mut BudgetAccountant|
     -> Result<(Dataset, GlobalReport, Duration), MechError> {
        accountant
            .spend("global TF mechanism", cfg.eps_global)
            .expect("budget sized for the model");
        // lint: allow(determinism): phase wall-time is reporting-only; the phase output never reads it
        let start = std::time::Instant::now();
        let (out, report) = global_phase(input, analysis)?;
        Ok((out, report, start.elapsed()))
    };
    let mut run_local = |input: &Dataset,
                         accountant: &mut BudgetAccountant|
     -> Result<(Dataset, LocalReport, Duration), MechError> {
        accountant.spend("local PF mechanism", cfg.eps_local).expect("budget sized for the model");
        // lint: allow(determinism): phase wall-time is reporting-only; the phase output never reads it
        let start = std::time::Instant::now();
        let (out, report) = local_phase(input, analysis)?;
        Ok((out, report, start.elapsed()))
    };

    let (dataset, global, local, global_time, local_time) = match model {
        Model::PureGlobal => {
            let (out, g, t) = run_global(ds, &mut accountant)?;
            (out, Some(g), None, t, Duration::ZERO)
        }
        Model::PureLocal => {
            let (out, l, t) = run_local(ds, &mut accountant)?;
            (out, None, Some(l), Duration::ZERO, t)
        }
        Model::Combined => {
            let (mid, g, tg) = run_global(ds, &mut accountant)?;
            let (out, l, tl) = run_local(&mid, &mut accountant)?;
            (out, Some(g), Some(l), tg, tl)
        }
        Model::CombinedLocalFirst => {
            let (mid, l, tl) = run_local(ds, &mut accountant)?;
            let (out, g, tg) = run_global(&mid, &mut accountant)?;
            (out, Some(g), Some(l), tg, tl)
        }
    };

    Ok(AnonymizedOutput {
        dataset,
        epsilon_spent: accountant.spent(),
        global,
        local,
        global_time,
        local_time,
    })
}

/// Runs a model end to end on a dataset.
///
/// The signature analysis runs once on the *original* dataset, as in the
/// paper — both mechanisms perturb the same candidate set `P`, and the
/// budget accountant enforces ε = ε_G + ε_L for the combined models.
///
/// Randomness comes from **per-unit streams** derived from `cfg.seed`
/// (see [`crate::stream`]): one stream per candidate point in the global
/// phase, one per trajectory in the local phase. This makes the output a
/// pure function of `(dataset, model, cfg)` independent of execution
/// order, so `trajdp_server`'s sharded executor reproduces it exactly at
/// any worker count.
pub fn anonymize(
    ds: &Dataset,
    model: Model,
    cfg: &FreqDpConfig,
) -> Result<AnonymizedOutput, MechError> {
    let analysis = FrequencyAnalysis::compute(ds, cfg.m);
    run_model(
        ds,
        model,
        cfg,
        &analysis,
        |input, analysis| {
            apply_global_streamed(
                input,
                analysis,
                cfg.eps_global,
                cfg.index,
                cfg.bbox_pruning,
                cfg.workers,
                cfg.seed,
            )
        },
        |input, analysis| {
            apply_local_streamed(
                input,
                analysis,
                cfg.eps_local,
                cfg.index,
                cfg.local_opts,
                cfg.seed,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Point, Sample, Trajectory};

    fn ds() -> Dataset {
        let mk = |id: u64, pts: &[(f64, f64)]| {
            Trajectory::new(
                id,
                pts.iter()
                    .enumerate()
                    .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64 * 10))
                    .collect(),
            )
        };
        Dataset::from_trajectories(vec![
            mk(0, &[(0.0, 0.0), (10.0, 0.0), (0.0, 0.0), (20.0, 5.0), (0.0, 0.0), (30.0, 0.0)]),
            mk(1, &[(100.0, 100.0), (110.0, 100.0), (100.0, 100.0), (120.0, 100.0)]),
            mk(2, &[(200.0, 0.0), (210.0, 0.0), (220.0, 0.0), (210.0, 0.0)]),
            mk(3, &[(50.0, 50.0), (60.0, 50.0), (50.0, 50.0), (70.0, 55.0)]),
        ])
    }

    fn cfg() -> FreqDpConfig {
        FreqDpConfig { m: 3, ..Default::default() }
    }

    #[test]
    fn pure_global_spends_only_eps_g() {
        let out = anonymize(&ds(), Model::PureGlobal, &cfg()).unwrap();
        assert_eq!(out.epsilon_spent, 0.5);
        assert!(out.global.is_some());
        assert!(out.local.is_none());
    }

    #[test]
    fn pure_local_spends_only_eps_l() {
        let out = anonymize(&ds(), Model::PureLocal, &cfg()).unwrap();
        assert_eq!(out.epsilon_spent, 0.5);
        assert!(out.global.is_none());
        assert!(out.local.is_some());
    }

    #[test]
    fn combined_spends_full_budget_both_orders() {
        for model in [Model::Combined, Model::CombinedLocalFirst] {
            let out = anonymize(&ds(), model, &cfg()).unwrap();
            assert_eq!(out.epsilon_spent, 1.0, "{model:?}");
            assert!(out.global.is_some() && out.local.is_some());
        }
    }

    #[test]
    fn preserves_trajectory_count_and_ids() {
        let d = ds();
        for model in
            [Model::PureGlobal, Model::PureLocal, Model::Combined, Model::CombinedLocalFirst]
        {
            let out = anonymize(&d, model, &cfg()).unwrap();
            assert_eq!(out.dataset.len(), d.len(), "{model:?}");
            for (a, b) in out.dataset.trajectories.iter().zip(&d.trajectories) {
                assert_eq!(a.id, b.id, "{model:?} must not reorder objects");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = ds();
        let a = anonymize(&d, Model::Combined, &cfg()).unwrap();
        let b = anonymize(&d, Model::Combined, &cfg()).unwrap();
        assert_eq!(a.dataset, b.dataset);
        let mut c2 = cfg();
        c2.seed = 999;
        let c = anonymize(&d, Model::Combined, &c2).unwrap();
        assert_ne!(a.dataset, c.dataset, "different seeds should differ");
    }

    #[test]
    fn utility_loss_and_edits_consistent() {
        let out = anonymize(&ds(), Model::Combined, &cfg()).unwrap();
        assert!(out.utility_loss().is_finite());
        if out.total_edits() == 0 {
            assert_eq!(out.utility_loss(), 0.0);
        }
    }

    #[test]
    fn large_epsilon_changes_little() {
        let d = ds();
        let mut c = cfg();
        c.eps_global = 1000.0;
        c.eps_local = 1000.0;
        let out = anonymize(&d, Model::PureGlobal, &c).unwrap();
        // Huge ε → negligible noise → TF unchanged → dataset unchanged.
        assert_eq!(out.dataset, d);
    }

    #[test]
    fn timings_populated_per_model() {
        let out = anonymize(&ds(), Model::PureGlobal, &cfg()).unwrap();
        assert_eq!(out.local_time, Duration::ZERO);
        let out = anonymize(&ds(), Model::PureLocal, &cfg()).unwrap();
        assert_eq!(out.global_time, Duration::ZERO);
    }
}

//! Runtime-selectable segment index, so the modification algorithms can
//! run against any of the paper's index variants (Linear, UG, HGt, HGb,
//! HG+) — the efficiency experiment of Figure 5 sweeps exactly these.

use trajdp_index::{
    HierGrid, LinearScan, Neighbor, SearchStats, SegmentEntry, SegmentIndex, Strategy, UniformGrid,
};
use trajdp_model::{Point, Rect};

/// Which index the editors should use for K-nearest segment search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Exhaustive scan (`Linear`).
    Linear,
    /// Single-level uniform grid (`UG`) with the given granularity.
    Uniform(u32),
    /// Hierarchical grid with the given finest granularity and search
    /// strategy (`HGt` / `HGb` / `HG+`).
    Hier(u32, Strategy),
}

impl Default for IndexKind {
    /// The paper's best configuration: HG+ with a 512×512 finest level.
    fn default() -> Self {
        IndexKind::Hier(512, Strategy::BottomUpDown)
    }
}

/// A segment index instantiated from an [`IndexKind`].
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// Linear scan backend.
    Linear(LinearScan),
    /// Uniform grid backend.
    Uniform(UniformGrid),
    /// Hierarchical grid backend with its search strategy.
    Hier(HierGrid, Strategy),
}

impl AnyIndex {
    /// Creates an empty index over `domain`.
    pub fn new(kind: IndexKind, domain: Rect) -> Self {
        match kind {
            IndexKind::Linear => AnyIndex::Linear(LinearScan::new()),
            IndexKind::Uniform(g) => AnyIndex::Uniform(UniformGrid::new(domain, g)),
            IndexKind::Hier(g, s) => AnyIndex::Hier(HierGrid::new(domain, g), s),
        }
    }

    /// Adds a segment.
    pub fn insert(&mut self, e: SegmentEntry) {
        match self {
            AnyIndex::Linear(i) => i.insert(e),
            AnyIndex::Uniform(i) => i.insert(e),
            AnyIndex::Hier(i, _) => i.insert(e),
        }
    }

    /// Removes a segment by payload id; returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        match self {
            AnyIndex::Linear(i) => i.remove(id),
            AnyIndex::Uniform(i) => i.remove(id),
            AnyIndex::Hier(i, _) => i.remove(id),
        }
    }

    /// K-nearest segments with work counters.
    pub fn knn_with_stats(
        &self,
        q: &Point,
        k: usize,
        filter: Option<&dyn Fn(u64) -> bool>,
    ) -> (Vec<Neighbor>, SearchStats) {
        match self {
            AnyIndex::Linear(i) => i.knn_with_stats(q, k, filter),
            AnyIndex::Uniform(i) => i.knn_with_stats(q, k, filter),
            AnyIndex::Hier(i, s) => i.knn_with_stats(q, k, *s, filter),
        }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        match self {
            AnyIndex::Linear(i) => i.len(),
            AnyIndex::Uniform(i) => SegmentIndex::len(i),
            AnyIndex::Hier(i, _) => SegmentIndex::len(i),
        }
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::Segment;

    fn entries() -> Vec<SegmentEntry> {
        (0..20)
            .map(|i| {
                let x = i as f64 * 40.0;
                SegmentEntry::new(i, Segment::new(Point::new(x, 0.0), Point::new(x + 10.0, 0.0)))
            })
            .collect()
    }

    fn kinds() -> Vec<IndexKind> {
        vec![
            IndexKind::Linear,
            IndexKind::Uniform(32),
            IndexKind::Hier(64, Strategy::TopDown),
            IndexKind::Hier(64, Strategy::BottomUp),
            IndexKind::Hier(64, Strategy::BottomUpDown),
        ]
    }

    #[test]
    fn all_kinds_agree_with_each_other() {
        let domain = Rect::new(0.0, -100.0, 1000.0, 100.0);
        let q = Point::new(333.0, 25.0);
        let mut reference: Option<Vec<f64>> = None;
        for kind in kinds() {
            let mut idx = AnyIndex::new(kind, domain);
            for e in entries() {
                idx.insert(e);
            }
            assert_eq!(idx.len(), 20);
            let (res, _) = idx.knn_with_stats(&q, 4, None);
            let dists: Vec<f64> = res.iter().map(|n| n.dist).collect();
            match &reference {
                None => reference = Some(dists),
                Some(r) => {
                    for (a, b) in dists.iter().zip(r) {
                        assert!((a - b).abs() < 1e-9, "{kind:?} disagrees");
                    }
                }
            }
        }
    }

    #[test]
    fn insert_remove_roundtrip_on_all_kinds() {
        let domain = Rect::new(0.0, -100.0, 1000.0, 100.0);
        for kind in kinds() {
            let mut idx = AnyIndex::new(kind, domain);
            assert!(idx.is_empty());
            for e in entries() {
                idx.insert(e);
            }
            assert!(idx.remove(7));
            assert!(!idx.remove(7));
            assert_eq!(idx.len(), 19);
            let (res, _) = idx.knn_with_stats(&Point::new(7.0 * 40.0 + 5.0, 0.0), 1, None);
            assert_ne!(res[0].id, 7, "{kind:?} returned a removed segment");
        }
    }

    #[test]
    fn default_is_hg_plus() {
        assert_eq!(IndexKind::default(), IndexKind::Hier(512, Strategy::BottomUpDown));
    }
}

//! Trajectory and dataset editors: apply the edit operations of §IV-A
//! with exact utility-loss accounting while keeping a segment index
//! incrementally up to date.
//!
//! * [`TrajectoryEditor`] drives **intra-trajectory modification**
//!   (Definition 9): inserting/deleting occurrences of a point within a
//!   single trajectory, choosing the ∆f nearest segments via K-nearest
//!   segment search (Definition 10).
//! * [`DatasetEditor`] drives **inter-trajectory modification**
//!   (Definition 7): raising/lowering a point's TF by inserting it into /
//!   deleting it from the ∆l trajectories with the least utility loss
//!   (Definition 8).

use crate::indexkind::{AnyIndex, IndexKind};
use crate::pool;
use std::collections::{BinaryHeap, HashMap, HashSet};
use trajdp_index::{SearchStats, SegmentEntry, TotalF64};
use trajdp_model::{Point, PointKey, Rect, Trajectory};

/// Editor for one trajectory, with an index over its segments.
#[derive(Debug, Clone)]
pub struct TrajectoryEditor {
    traj: Trajectory,
    /// `seg_ids[i]` is the index payload of segment `⟨samples[i], samples[i+1]⟩`.
    seg_ids: Vec<u64>,
    index: AnyIndex,
    next_id: u64,
    /// Accumulated utility loss of all edits.
    pub loss: f64,
    /// Accumulated search work counters.
    pub stats: SearchStats,
    /// Number of point insertions performed.
    pub insertions: usize,
    /// Number of point deletions performed.
    pub deletions: usize,
}

impl TrajectoryEditor {
    /// Builds an editor (and its index) for `traj` over `domain`.
    pub fn new(traj: Trajectory, kind: IndexKind, domain: Rect) -> Self {
        let mut index = AnyIndex::new(kind, domain);
        let mut seg_ids = Vec::with_capacity(traj.num_segments());
        for (i, seg) in traj.segments() {
            let id = i as u64;
            index.insert(SegmentEntry::new(id, seg));
            seg_ids.push(id);
        }
        let next_id = seg_ids.len() as u64;
        Self {
            traj,
            seg_ids,
            index,
            next_id,
            loss: 0.0,
            stats: SearchStats::default(),
            insertions: 0,
            deletions: 0,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Read access to the trajectory being edited.
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Finishes editing, returning the modified trajectory.
    pub fn into_trajectory(self) -> Trajectory {
        self.traj
    }

    fn accumulate(&mut self, s: SearchStats) {
        self.stats.cells_visited += s.cells_visited;
        self.stats.segments_checked += s.segments_checked;
    }

    /// Inserts `delta` occurrences of `q` at the ∆f nearest segments
    /// (Definition 10). Returns the utility loss incurred.
    pub fn insert_occurrences(&mut self, q: Point, delta: usize) -> f64 {
        if delta == 0 {
            return 0.0;
        }
        let mut incurred = 0.0;
        if self.traj.len() < 2 {
            // No segments exist: append (the degenerate fallback).
            for _ in 0..delta {
                incurred += self.traj.push_point(q);
                self.insertions += 1;
            }
            self.rebuild_index_suffix(0);
            self.loss += incurred;
            return incurred;
        }
        let (neighbors, stats) = self.index.knn_with_stats(&q, delta, None);
        self.accumulate(stats);
        // Map neighbour ids to current segment positions; insert from the
        // highest position down so earlier positions stay valid.
        let mut positions: Vec<usize> = neighbors
            .iter()
            .filter_map(|n| self.seg_ids.iter().position(|&id| id == n.id))
            .collect();
        positions.sort_unstable_by(|a, b| b.cmp(a));
        for pos in positions {
            incurred += self.insert_at_segment(q, pos);
        }
        // If the trajectory had fewer segments than `delta`, append the
        // remainder at the nearest end.
        let done = neighbors.len();
        for _ in done..delta {
            incurred += self.traj.push_point(q);
            self.insertions += 1;
            let last = self.traj.len() - 2;
            let id = self.fresh_id();
            self.index.insert(SegmentEntry::new(id, self.traj.segment(last)));
            self.seg_ids.push(id);
        }
        self.loss += incurred;
        incurred
    }

    /// Inserts `q` into segment `pos`, splitting the index entry.
    fn insert_at_segment(&mut self, q: Point, pos: usize) -> f64 {
        let old_id = self.seg_ids[pos];
        self.index.remove(old_id);
        let loss = self.traj.insert_into_segment(q, pos);
        self.insertions += 1;
        let left = self.fresh_id();
        let right = self.fresh_id();
        self.index.insert(SegmentEntry::new(left, self.traj.segment(pos)));
        self.index.insert(SegmentEntry::new(right, self.traj.segment(pos + 1)));
        self.seg_ids.splice(pos..=pos, [left, right]);
        loss
    }

    /// Deletes `delta` occurrences of `q`, each time removing the
    /// occurrence with the smallest reconnection loss (the K-nearest
    /// deletion of Definition 10). Deletes all occurrences when fewer
    /// than `delta` exist. Returns the utility loss incurred.
    pub fn delete_occurrences(&mut self, q: PointKey, delta: usize) -> f64 {
        let mut incurred = 0.0;
        for _ in 0..delta {
            let occ = self.traj.occurrences(q);
            let Some(&best) = occ.iter().min_by(|&&a, &&b| {
                self.traj.deletion_loss(a).total_cmp(&self.traj.deletion_loss(b))
            }) else {
                break;
            };
            incurred += self.delete_at(best);
        }
        self.loss += incurred;
        incurred
    }

    /// Deletes the sample at `idx`, merging the index entries.
    fn delete_at(&mut self, idx: usize) -> f64 {
        let len = self.traj.len();
        debug_assert!(idx < len);
        // Remove index entries of the segments touching the sample.
        if idx > 0 {
            self.index.remove(self.seg_ids[idx - 1]);
        }
        if idx + 1 < len {
            self.index.remove(self.seg_ids[idx]);
        }
        let loss = self.traj.delete_at(idx);
        self.deletions += 1;
        // Update seg_ids: the two touching segments collapse into one
        // (interior) or zero (endpoint).
        if idx > 0 && idx < len - 1 {
            let merged = self.fresh_id();
            self.index.insert(SegmentEntry::new(merged, self.traj.segment(idx - 1)));
            self.seg_ids.splice(idx - 1..=idx, [merged]);
        } else if idx == 0 {
            if !self.seg_ids.is_empty() {
                self.seg_ids.remove(0);
            }
        } else if !self.seg_ids.is_empty() {
            self.seg_ids.pop();
        }
        loss
    }

    /// Re-registers all segments from position `from` (used after bulk
    /// structural changes).
    fn rebuild_index_suffix(&mut self, from: usize) {
        for &id in &self.seg_ids[from.min(self.seg_ids.len())..] {
            self.index.remove(id);
        }
        self.seg_ids.truncate(from.min(self.seg_ids.len()));
        for i in from..self.traj.num_segments() {
            let id = self.next_id;
            self.next_id += 1;
            self.index.insert(SegmentEntry::new(id, self.traj.segment(i)));
            self.seg_ids.push(id);
        }
    }

    /// Internal invariant check used by tests: every segment of the
    /// trajectory has exactly one index entry.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert_eq!(self.seg_ids.len(), self.traj.num_segments(), "seg_ids length mismatch");
        assert_eq!(self.index.len(), self.seg_ids.len(), "index size mismatch");
        let distinct_ids: HashSet<u64> = self.seg_ids.iter().copied().collect();
        assert_eq!(distinct_ids.len(), self.seg_ids.len(), "duplicate segment ids");
    }
}

/// Offers `entry` to a max-heap keeping the `delta` smallest
/// `(loss, slot)` pairs — the fixed tie rule of the inter-trajectory
/// selection: on equal loss the smallest slot wins, so merging chunk
/// heaps is order-independent.
fn push_bounded(best: &mut BinaryHeap<(TotalF64, usize)>, delta: usize, entry: (TotalF64, usize)) {
    if best.len() < delta {
        best.push(entry);
    } else if let Some(top) = best.peek() {
        if entry < *top {
            best.pop();
            best.push(entry);
        }
    }
}

/// Editor for a whole dataset, with a single index over every segment.
#[derive(Debug)]
pub struct DatasetEditor {
    trajs: Vec<Trajectory>,
    seg_ids: Vec<Vec<u64>>,
    index: AnyIndex,
    owner: HashMap<u64, usize>,
    /// Inverted occurrence map: point → trajectory slots containing it.
    containing: HashMap<PointKey, HashSet<usize>>,
    /// Cached per-trajectory bounding boxes for branch-and-bound
    /// candidate pruning (the paper's §V-C future-work optimization).
    bboxes: Vec<Rect>,
    /// Whether `increase_tf` uses trajectory-bbox branch-and-bound
    /// instead of the segment index.
    pub use_bbox_pruning: bool,
    /// Worker threads for the exact-loss candidate scans of
    /// [`Self::increase_tf`] (bbox path) and [`Self::decrease_tf`].
    /// The scans are pure, so the selection — and therefore the edited
    /// dataset — is identical at every value; `1` scans serially.
    pub workers: usize,
    next_id: u64,
    domain: Rect,
    kind: IndexKind,
    /// Accumulated utility loss of all edits.
    pub loss: f64,
    /// Accumulated search work counters.
    pub stats: SearchStats,
    /// Number of point insertions performed.
    pub insertions: usize,
    /// Number of point deletions performed.
    pub deletions: usize,
}

impl DatasetEditor {
    /// Builds an editor (and a dataset-wide index) for the trajectories.
    pub fn new(trajs: Vec<Trajectory>, kind: IndexKind, domain: Rect) -> Self {
        let mut index = AnyIndex::new(kind, domain);
        let mut seg_ids = Vec::with_capacity(trajs.len());
        let mut owner = HashMap::new();
        let mut containing: HashMap<PointKey, HashSet<usize>> = HashMap::new();
        let mut next_id = 0u64;
        for (t, traj) in trajs.iter().enumerate() {
            let mut ids = Vec::with_capacity(traj.num_segments());
            for (_, seg) in traj.segments() {
                index.insert(SegmentEntry::new(next_id, seg));
                owner.insert(next_id, t);
                ids.push(next_id);
                next_id += 1;
            }
            seg_ids.push(ids);
            for s in &traj.samples {
                containing.entry(s.loc.key()).or_default().insert(t);
            }
        }
        let bboxes = trajs.iter().map(Trajectory::bbox).collect();
        Self {
            trajs,
            seg_ids,
            index,
            owner,
            containing,
            bboxes,
            use_bbox_pruning: false,
            workers: 1,
            next_id,
            domain,
            kind,
            loss: 0.0,
            stats: SearchStats::default(),
            insertions: 0,
            deletions: 0,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Finishes editing, returning the modified trajectories.
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trajs
    }

    /// Read access to the trajectories being edited.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajs
    }

    /// Trajectory slots currently containing point `q`.
    pub fn trajectories_containing(&self, q: PointKey) -> Vec<usize> {
        self.containing
            .get(&q)
            .map(|s| {
                let mut v: Vec<usize> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    fn accumulate(&mut self, s: SearchStats) {
        self.stats.cells_visited += s.cells_visited;
        self.stats.segments_checked += s.segments_checked;
    }

    /// TF-increasing task (Definition 8): inserts `q` once into each of
    /// the `delta` nearest trajectories that do not already pass through
    /// `q`. Returns the number of trajectories actually modified (may be
    /// fewer when the dataset runs out of eligible trajectories).
    pub fn increase_tf(&mut self, q: Point, delta: usize) -> usize {
        if delta == 0 {
            return 0;
        }
        if self.use_bbox_pruning {
            return self.increase_tf_bbox(q, delta);
        }
        let qk = q.key();
        let eligible = |editor: &Self, t: usize| -> bool {
            !editor.containing.get(&qk).is_some_and(|s| s.contains(&t))
        };
        // Grow-k nearest-segment search: score each owning trajectory by
        // its nearest reported segment, then pick the ∆l best in
        // ascending `(distance, slot)` order — on equal distance the
        // smallest slot wins, the same tie rule as the bbox path.
        let mut chosen: Vec<usize>;
        let mut k = delta.saturating_mul(4).max(8);
        loop {
            let owner = &self.owner;
            let containing = self.containing.get(&qk);
            let filter = |id: u64| -> bool {
                let t = owner[&id];
                !containing.is_some_and(|s| s.contains(&t))
            };
            let (neighbors, stats) = self.index.knn_with_stats(&q, k, Some(&filter));
            self.accumulate(stats);
            let exhausted = neighbors.len() < k;
            // Unreported segments all lie at or beyond the search
            // frontier (the k-th reported distance).
            let frontier = neighbors.last().map_or(f64::INFINITY, |n| n.dist);
            // Neighbors arrive sorted by distance, so a trajectory's
            // first hit is its nearest reported segment.
            let mut scored: Vec<(f64, usize)> = Vec::new();
            for n in &neighbors {
                let t = self.owner[&n.id];
                if !scored.iter().any(|&(_, s)| s == t) {
                    scored.push((n.dist, t));
                }
            }
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            scored.truncate(delta);
            // The selection is final only once the ∆l-th distance lies
            // strictly inside the frontier: at the frontier itself, a
            // hidden equal-distance trajectory with a smaller slot could
            // still displace the ∆l-th pick (the k cutoff truncates ties
            // in index-visit order, not slot order), so keep growing.
            let settled =
                scored.len() == delta && scored.last().is_some_and(|&(d, _)| d < frontier);
            chosen = scored.into_iter().map(|(_, t)| t).collect();
            if settled || exhausted {
                break;
            }
            k *= 2;
        }
        // Fallback: trajectories with no segments can still take an
        // appended point.
        if chosen.len() < delta {
            for t in 0..self.trajs.len() {
                if chosen.len() == delta {
                    break;
                }
                if self.trajs[t].num_segments() == 0 && eligible(self, t) && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        let inserted = chosen.len();
        for t in chosen {
            self.insert_point_into(t, q);
        }
        inserted
    }

    /// TF-increasing task via trajectory-level branch-and-bound — the
    /// optimization §V-C leaves as future work: candidates are visited
    /// in ascending bounding-box `MINdist` order and the scan stops once
    /// the next lower bound exceeds the ∆l-th best exact insertion loss.
    /// Produces exactly the same selection as the index-based search:
    /// the ∆l smallest `(insertion loss, slot)` pairs, so equal-loss
    /// ties always go to the smallest slot.
    ///
    /// With `workers > 1` the candidate list is cut into contiguous
    /// chunks scanned concurrently; each chunk keeps its own ∆l-bounded
    /// heap (branch-and-bound prunes within the chunk, seeded with a
    /// global upper bound from the ∆l most promising candidates so
    /// chunks keep the serial path's pruning power) and the seeded heap
    /// merges with the per-chunk heaps under the same `(loss, slot)`
    /// order, so the selection is independent of the worker count. The
    /// chunks cover only the candidates *past* the seed prefix — the
    /// prefix's exact losses are already in the seeded heap, so no
    /// candidate's exact-loss sweep runs twice. Only the work
    /// *counters* (`stats.segments_checked`) vary with the worker
    /// count.
    fn increase_tf_bbox(&mut self, q: Point, delta: usize) -> usize {
        let qk = q.key();
        let containing = self.containing.get(&qk);
        // Eligible trajectories in ascending lower-bound order.
        let mut candidates: Vec<(f64, usize)> = self
            .bboxes
            .iter()
            .enumerate()
            .filter(|&(t, _)| {
                !containing.is_some_and(|s| s.contains(&t)) && !self.trajs[t].is_empty()
            })
            .map(|(t, b)| (b.min_dist(&q), t))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let workers = self.workers.max(1);
        let (chosen, checked) = if workers > 1 && candidates.len() > 1 {
            let trajs = &self.trajs;
            // Seed a global pruning bound from the ∆l candidates with the
            // smallest lower bounds: the final ∆l-th loss can only be
            // smaller, so every chunk may skip candidates whose lower
            // bound exceeds it — restoring the early termination the
            // serial scan gets from its evolving heap.
            let seed = delta.min(candidates.len());
            let (seeded, seed_checked) =
                Self::scan_insertion_chunk(trajs, q, delta, &candidates[..seed], f64::INFINITY);
            let bound = if seeded.len() == delta {
                seeded.last().expect("non-empty").0
            } else {
                f64::INFINITY
            };
            // Only the candidates past the seed prefix are handed to
            // the chunk pool: the prefix's exact losses are already in
            // `seeded`, and re-scanning them inside chunk 0 would pay
            // the exact-loss sweep of the first ∆l candidates twice.
            let shards = pool::map_chunks(workers, &candidates[seed..], |_, chunk| {
                Self::scan_insertion_chunk(trajs, q, delta, chunk, bound)
            });
            let mut merged = seeded;
            merged.reserve(delta * shards.len());
            let mut checked = seed_checked;
            for (part, c) in shards {
                merged.extend(part);
                checked += c;
            }
            merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            merged.truncate(delta);
            (merged, checked)
        } else {
            Self::scan_insertion_chunk(&self.trajs, q, delta, &candidates, f64::INFINITY)
        };
        self.stats.segments_checked += checked;
        let inserted = chosen.len();
        for (_, t) in chosen {
            self.insert_point_into(t, q);
        }
        inserted
    }

    /// Branch-and-bound exact-loss scan over one chunk of `(lower bound,
    /// slot)` candidates sorted ascending by `(lower, slot)`. Returns the
    /// chunk's ∆l smallest `(exact loss, slot)` pairs in ascending order
    /// plus the number of segments whose distance was computed. `bound`
    /// is an optional global upper bound on the final ∆l-th loss; the
    /// scan stops at the first candidate provably worse than either it
    /// or the chunk-local ∆l-th best.
    fn scan_insertion_chunk(
        trajs: &[Trajectory],
        q: Point,
        delta: usize,
        chunk: &[(f64, usize)],
        bound: f64,
    ) -> (Vec<(f64, usize)>, usize) {
        let mut best: BinaryHeap<(TotalF64, usize)> = BinaryHeap::with_capacity(delta + 1);
        let mut checked = 0;
        for &(lower, t) in chunk {
            // A strictly larger lower bound cannot beat the ∆l-th best
            // loss, not even on a tie (exact >= lower > best). Lower
            // bounds ascend within the chunk, so stop outright.
            if lower > bound
                || (best.len() == delta && lower > best.peek().expect("non-empty").0 .0)
            {
                break;
            }
            let traj = &trajs[t];
            let exact = if traj.num_segments() == 0 {
                // Single-sample trajectory: appending costs the distance
                // from its only sample.
                traj.samples.last().map_or(f64::INFINITY, |s| s.loc.dist(&q))
            } else {
                traj.segments().map(|(_, s)| s.dist_to_point(&q)).fold(f64::INFINITY, f64::min)
            };
            checked += traj.num_segments().max(1);
            push_bounded(&mut best, delta, (TotalF64(exact), t));
        }
        (best.into_sorted_vec().into_iter().map(|(l, t)| (l.0, t)).collect(), checked)
    }

    /// Inserts `q` into trajectory slot `t` at its best segment.
    fn insert_point_into(&mut self, t: usize, q: Point) {
        let traj = &self.trajs[t];
        if traj.len() < 2 {
            self.loss += self.trajs[t].push_point(q);
            self.insertions += 1;
            if self.trajs[t].len() >= 2 {
                let pos = self.trajs[t].num_segments() - 1;
                let id = self.fresh_id();
                self.index.insert(SegmentEntry::new(id, self.trajs[t].segment(pos)));
                self.owner.insert(id, t);
                self.seg_ids[t].push(id);
            }
        } else {
            // Scan the trajectory for the minimum-loss segment (the
            // index already narrowed the trajectory choice).
            let pos = (0..traj.num_segments())
                .min_by(|&a, &b| {
                    traj.segment(a).dist_to_point(&q).total_cmp(&traj.segment(b).dist_to_point(&q))
                })
                .expect("non-empty segment list");
            let old_id = self.seg_ids[t][pos];
            self.index.remove(old_id);
            self.owner.remove(&old_id);
            self.loss += self.trajs[t].insert_into_segment(q, pos);
            self.insertions += 1;
            let left = self.fresh_id();
            let right = self.fresh_id();
            self.index.insert(SegmentEntry::new(left, self.trajs[t].segment(pos)));
            self.index.insert(SegmentEntry::new(right, self.trajs[t].segment(pos + 1)));
            self.owner.insert(left, t);
            self.owner.insert(right, t);
            self.seg_ids[t].splice(pos..=pos, [left, right]);
        }
        self.containing.entry(q.key()).or_default().insert(t);
        self.bboxes[t].expand(&q);
    }

    /// TF-decreasing task (Definition 8): completely deletes `q` from the
    /// `delta` trajectories (among those containing it) with the least
    /// complete-deletion loss. Returns the number of trajectories
    /// actually modified.
    pub fn decrease_tf(&mut self, q: PointKey, delta: usize) -> usize {
        if delta == 0 {
            return 0;
        }
        let victims = self.decrease_victims(q, delta, self.workers);
        self.apply_decrease(q, &victims);
        victims.len()
    }

    /// The ∆l victims a [`Self::decrease_tf`] of `q` would delete from:
    /// the trajectories containing `q` with the smallest `(complete-
    /// deletion loss, slot)` pairs, in ascending order — equal-loss ties
    /// go to the smallest slot. A pure scan over up to `workers`
    /// threads; the selection is identical at every worker count.
    pub fn decrease_victims(&self, q: PointKey, delta: usize, workers: usize) -> Vec<usize> {
        if delta == 0 {
            return Vec::new();
        }
        let candidates = self.trajectories_containing(q);
        // Complete-deletion loss per candidate: Σ_s L[OP_d(q, s)].
        let score_chunk = |_lo: usize, chunk: &[usize]| -> Vec<(TotalF64, usize)> {
            let mut best: BinaryHeap<(TotalF64, usize)> = BinaryHeap::with_capacity(delta + 1);
            for &t in chunk {
                let traj = &self.trajs[t];
                let total: f64 =
                    traj.occurrences(q).into_iter().map(|i| traj.deletion_loss(i)).sum();
                push_bounded(&mut best, delta, (TotalF64(total), t));
            }
            best.into_sorted_vec()
        };
        let mut scored: Vec<(TotalF64, usize)> = if workers > 1 && candidates.len() > 1 {
            pool::map_chunks(workers, &candidates, score_chunk).into_iter().flatten().collect()
        } else {
            score_chunk(0, &candidates)
        };
        scored.sort_unstable();
        scored.into_iter().take(delta).map(|(_, t)| t).collect()
    }

    /// Applies a decrease previously scanned by [`Self::decrease_victims`]:
    /// deletes every occurrence of `q` from each victim, in order.
    pub fn apply_decrease(&mut self, q: PointKey, victims: &[usize]) {
        for &t in victims {
            self.delete_point_from(t, q);
        }
    }

    /// Removes every occurrence of `q` from slot `t`, re-registering the
    /// trajectory's segments.
    fn delete_point_from(&mut self, t: usize, q: PointKey) {
        for &id in &self.seg_ids[t] {
            self.index.remove(id);
            self.owner.remove(&id);
        }
        self.seg_ids[t].clear();
        let occurrences = self.trajs[t].occurrences(q).len();
        self.loss += self.trajs[t].delete_all(q);
        self.deletions += occurrences;
        let mut ids = Vec::with_capacity(self.trajs[t].num_segments());
        for i in 0..self.trajs[t].num_segments() {
            let id = self.fresh_id();
            self.index.insert(SegmentEntry::new(id, self.trajs[t].segment(i)));
            self.owner.insert(id, t);
            ids.push(id);
        }
        self.seg_ids[t] = ids;
        if let Some(s) = self.containing.get_mut(&q) {
            s.remove(&t);
            if s.is_empty() {
                self.containing.remove(&q);
            }
        }
        // Deletion may shrink the extent; recompute the cached box.
        self.bboxes[t] = self.trajs[t].bbox();
    }

    /// Current TF of `q` as tracked by the editor.
    pub fn tf(&self, q: PointKey) -> usize {
        self.containing.get(&q).map_or(0, HashSet::len)
    }

    /// The domain the editor indexes over.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The index kind the editor was built with.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Internal invariant check used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0;
        for (t, ids) in self.seg_ids.iter().enumerate() {
            assert_eq!(ids.len(), self.trajs[t].num_segments(), "slot {t} seg count");
            for &id in ids {
                assert_eq!(self.owner[&id], t, "owner mismatch for id {id}");
            }
            total += ids.len();
        }
        assert_eq!(self.index.len(), total, "index size mismatch");
        // lint: allow(determinism): assertion-only walk; every entry is checked and no output depends on visit order
        for (k, set) in &self.containing {
            for &t in set {
                assert!(self.trajs[t].passes_through(*k), "stale containing entry");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdp_model::{Sample, Segment};

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64 * 10))
                .collect(),
        )
    }

    fn domain() -> Rect {
        Rect::new(-100.0, -100.0, 1100.0, 1100.0)
    }

    // ---------- TrajectoryEditor ----------

    #[test]
    fn insert_picks_nearest_segment() {
        let t = traj(0, &[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        let q = Point::new(50.0, 5.0); // 5 m from the first segment
        let loss = ed.insert_occurrences(q, 1);
        assert_eq!(loss, 5.0);
        ed.check_invariants();
        let out = ed.into_trajectory();
        assert_eq!(out.len(), 4);
        assert_eq!(out.samples[1].loc, q);
    }

    #[test]
    fn multi_insert_uses_distinct_segments() {
        let t = traj(0, &[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0), (300.0, 0.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        let q = Point::new(150.0, 10.0);
        ed.insert_occurrences(q, 2);
        ed.check_invariants();
        let out = ed.into_trajectory();
        assert_eq!(out.len(), 6);
        assert_eq!(out.count_point(q.key()), 2);
        assert_eq!(ed_count(&out, q), 2);
    }

    fn ed_count(t: &Trajectory, q: Point) -> usize {
        t.count_point(q.key())
    }

    #[test]
    fn insert_more_than_segments_appends_remainder() {
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0)]); // one segment
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        let q = Point::new(5.0, 1.0);
        ed.insert_occurrences(q, 3);
        ed.check_invariants();
        let out = ed.into_trajectory();
        assert_eq!(out.count_point(q.key()), 3);
        assert!(out.samples.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn insert_into_degenerate_trajectory() {
        let t = traj(0, &[(1.0, 1.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        ed.insert_occurrences(Point::new(2.0, 2.0), 2);
        ed.check_invariants();
        assert_eq!(ed.trajectory().len(), 3);
    }

    #[test]
    fn delete_prefers_cheapest_occurrence() {
        // q at index 1 lies ON the line (0 reconnection loss); q at index
        // 3 is a 50 m detour.
        let t = traj(0, &[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0), (150.0, 50.0), (200.0, 0.0)]);
        let q1 = Point::new(50.0, 0.0);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        let loss = ed.delete_occurrences(q1.key(), 1);
        assert_eq!(loss, 0.0);
        ed.check_invariants();
        assert_eq!(ed.trajectory().len(), 4);
    }

    #[test]
    fn delete_more_than_present_deletes_all() {
        let q = Point::new(5.0, 5.0);
        let t = traj(0, &[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0), (5.0, 5.0), (20.0, 0.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        ed.delete_occurrences(q.key(), 10);
        ed.check_invariants();
        assert_eq!(ed.trajectory().count_point(q.key()), 0);
        assert_eq!(ed.deletions, 2);
    }

    #[test]
    fn delete_endpoint_occurrence() {
        let q = Point::new(0.0, 0.0);
        let t = traj(0, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        let loss = ed.delete_occurrences(q.key(), 1);
        assert_eq!(loss, 0.0); // endpoints reconnect for free
        ed.check_invariants();
        assert_eq!(ed.trajectory().len(), 2);
    }

    #[test]
    fn editor_losses_accumulate() {
        let t = traj(0, &[(0.0, 0.0), (100.0, 0.0)]);
        let mut ed = TrajectoryEditor::new(t, IndexKind::default(), domain());
        ed.insert_occurrences(Point::new(50.0, 10.0), 1);
        ed.insert_occurrences(Point::new(25.0, 20.0), 1);
        assert!(ed.loss >= 10.0);
        assert_eq!(ed.insertions, 2);
    }

    // ---------- DatasetEditor ----------

    fn make_dataset_editor() -> DatasetEditor {
        let trajs = vec![
            traj(0, &[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]),
            traj(1, &[(0.0, 500.0), (100.0, 500.0), (200.0, 500.0)]),
            traj(2, &[(0.0, 1000.0), (100.0, 1000.0), (200.0, 1000.0)]),
        ];
        DatasetEditor::new(trajs, IndexKind::default(), domain())
    }

    #[test]
    fn increase_tf_picks_nearest_trajectories() {
        let mut ed = make_dataset_editor();
        let q = Point::new(150.0, 40.0); // closest to trajectory 0, then 1
        let n = ed.increase_tf(q, 2);
        assert_eq!(n, 2);
        ed.check_invariants();
        assert_eq!(ed.tf(q.key()), 2);
        let trajs = ed.into_trajectories();
        assert!(trajs[0].passes_through(q.key()));
        assert!(trajs[1].passes_through(q.key()));
        assert!(!trajs[2].passes_through(q.key()));
    }

    #[test]
    fn increase_tf_skips_trajectories_already_containing() {
        let mut ed = make_dataset_editor();
        let q = Point::new(100.0, 0.0); // already in trajectory 0
        assert_eq!(ed.tf(q.key()), 1);
        let n = ed.increase_tf(q, 1);
        assert_eq!(n, 1);
        ed.check_invariants();
        assert_eq!(ed.tf(q.key()), 2);
        // Trajectory 1 (nearest without q) must be the one modified.
        assert!(ed.trajectories()[1].passes_through(q.key()));
    }

    #[test]
    fn increase_tf_saturates_at_dataset_size() {
        let mut ed = make_dataset_editor();
        let q = Point::new(50.0, 250.0);
        let n = ed.increase_tf(q, 10);
        assert_eq!(n, 3, "cannot insert into more trajectories than exist");
        ed.check_invariants();
        assert_eq!(ed.tf(q.key()), 3);
    }

    #[test]
    fn decrease_tf_removes_all_occurrences_from_victims() {
        let trajs = vec![
            traj(0, &[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0), (50.0, 0.0)]),
            traj(1, &[(0.0, 500.0), (50.0, 0.0), (100.0, 500.0)]),
            traj(2, &[(0.0, 1000.0), (200.0, 1000.0)]),
        ];
        let mut ed = DatasetEditor::new(trajs, IndexKind::default(), domain());
        let q = Point::new(50.0, 0.0).key();
        assert_eq!(ed.tf(q), 2);
        let n = ed.decrease_tf(q, 1);
        assert_eq!(n, 1);
        ed.check_invariants();
        assert_eq!(ed.tf(q), 1);
        // The victim should be trajectory 0: its occurrences lie on the
        // straight line (zero reconnection loss) while trajectory 1's
        // occurrence is a 500 m detour.
        assert_eq!(ed.trajectories()[0].count_point(q), 0);
        assert!(ed.trajectories()[1].passes_through(q));
    }

    #[test]
    fn decrease_tf_saturates() {
        let mut ed = make_dataset_editor();
        let q = Point::new(100.0, 0.0).key();
        let n = ed.decrease_tf(q, 5);
        assert_eq!(n, 1);
        ed.check_invariants();
        assert_eq!(ed.tf(q), 0);
        assert_eq!(ed.decrease_tf(q, 1), 0);
    }

    #[test]
    fn roundtrip_increase_then_decrease() {
        let mut ed = make_dataset_editor();
        let q = Point::new(300.0, 300.0);
        ed.increase_tf(q, 2);
        assert_eq!(ed.tf(q.key()), 2);
        ed.decrease_tf(q.key(), 2);
        assert_eq!(ed.tf(q.key()), 0);
        ed.check_invariants();
        for t in ed.trajectories() {
            assert!(!t.passes_through(q.key()));
        }
    }

    #[test]
    fn dataset_editor_tracks_loss_and_counts() {
        let mut ed = make_dataset_editor();
        let q = Point::new(150.0, 40.0);
        ed.increase_tf(q, 1);
        assert!(ed.loss > 0.0);
        assert_eq!(ed.insertions, 1);
        ed.decrease_tf(q.key(), 1);
        assert_eq!(ed.deletions, 1);
    }

    #[test]
    fn works_with_all_index_kinds() {
        use trajdp_index::Strategy;
        for kind in [
            IndexKind::Linear,
            IndexKind::Uniform(32),
            IndexKind::Hier(64, Strategy::TopDown),
            IndexKind::Hier(64, Strategy::BottomUp),
            IndexKind::Hier(64, Strategy::BottomUpDown),
        ] {
            let trajs = vec![
                traj(0, &[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]),
                traj(1, &[(0.0, 500.0), (100.0, 500.0)]),
            ];
            let mut ed = DatasetEditor::new(trajs, kind, domain());
            let q = Point::new(150.0, 40.0);
            assert_eq!(ed.increase_tf(q, 1), 1, "{kind:?}");
            ed.check_invariants();
            assert!(
                ed.trajectories()[0].passes_through(q.key()),
                "{kind:?} chose wrong trajectory"
            );
        }
    }

    fn _segment_helper_compiles(s: Segment) -> f64 {
        s.len()
    }

    // ---------- bbox-pruned inter-trajectory modification ----------

    #[test]
    fn bbox_pruning_selects_same_trajectories() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let trajs: Vec<Trajectory> = (0..25)
            .map(|id| {
                let cx: f64 = rng.gen_range(0.0..900.0);
                let cy: f64 = rng.gen_range(0.0..900.0);
                let pts: Vec<(f64, f64)> = (0..8)
                    .map(|_| (cx + rng.gen_range(0.0..120.0), cy + rng.gen_range(0.0..120.0)))
                    .collect();
                traj(id, &pts)
            })
            .collect();
        for delta in [1usize, 3, 7] {
            let q = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let mut plain = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            let mut pruned = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            pruned.use_bbox_pruning = true;
            assert_eq!(plain.increase_tf(q, delta), pruned.increase_tf(q, delta));
            pruned.check_invariants();
            let a: Vec<bool> =
                plain.trajectories().iter().map(|t| t.passes_through(q.key())).collect();
            let b: Vec<bool> =
                pruned.trajectories().iter().map(|t| t.passes_through(q.key())).collect();
            assert_eq!(a, b, "delta={delta}: pruned selection differs");
            assert!((plain.loss - pruned.loss).abs() < 1e-9, "loss differs at delta={delta}");
        }
    }

    #[test]
    fn bbox_pruning_checks_fewer_segments() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let trajs: Vec<Trajectory> = (0..60)
            .map(|id| {
                let cx: f64 = rng.gen_range(0.0..900.0);
                let cy: f64 = rng.gen_range(0.0..900.0);
                let pts: Vec<(f64, f64)> = (0..20)
                    .map(|_| (cx + rng.gen_range(0.0..60.0), cy + rng.gen_range(0.0..60.0)))
                    .collect();
                traj(id, &pts)
            })
            .collect();
        let total_segments: usize = trajs.iter().map(Trajectory::num_segments).sum();
        let mut pruned = DatasetEditor::new(trajs, IndexKind::default(), domain());
        pruned.use_bbox_pruning = true;
        pruned.increase_tf(Point::new(10.0, 10.0), 2);
        assert!(
            pruned.stats.segments_checked < total_segments / 2,
            "pruning should skip most trajectories: checked {} of {}",
            pruned.stats.segments_checked,
            total_segments
        );
    }

    // ---------- tie-breaking and parallel scans ----------

    /// 18 single-segment trajectories in two distance bands, arranged so
    /// the *closer* band occupies the *higher* slots: slots 0–8 lie 20 m
    /// from the query, slots 9–17 lie 5 m away. Every within-band
    /// comparison is an equal-loss tie.
    fn tie_heavy_trajs() -> Vec<Trajectory> {
        (0..18)
            .map(|slot| {
                let y = if slot < 9 { 20.0 } else { 5.0 };
                traj(slot, &[(0.0, y), (100.0, y)])
            })
            .collect()
    }

    #[test]
    fn bbox_vs_index_parity_on_tie_heavy_dataset() {
        let trajs = tie_heavy_trajs();
        let q = Point::new(50.0, 0.0);
        for delta in [1usize, 3, 9, 12, 17] {
            let mut plain = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            let mut pruned = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            pruned.use_bbox_pruning = true;
            assert_eq!(plain.increase_tf(q, delta), pruned.increase_tf(q, delta));
            let a: Vec<bool> =
                plain.trajectories().iter().map(|t| t.passes_through(q.key())).collect();
            let b: Vec<bool> =
                pruned.trajectories().iter().map(|t| t.passes_through(q.key())).collect();
            assert_eq!(a, b, "delta={delta}: selections diverge on ties");
            assert!((plain.loss - pruned.loss).abs() < 1e-9, "delta={delta}");
        }
    }

    #[test]
    fn equal_loss_ties_go_to_smallest_slot_on_both_paths() {
        // With delta = 3 the nearer band (slots 9–17) ties nine ways;
        // the fixed rule must pick its three smallest slots.
        let q = Point::new(50.0, 0.0);
        for bbox in [false, true] {
            let mut ed = DatasetEditor::new(tie_heavy_trajs(), IndexKind::default(), domain());
            ed.use_bbox_pruning = bbox;
            assert_eq!(ed.increase_tf(q, 3), 3);
            let chosen: Vec<usize> =
                (0..18).filter(|&t| ed.trajectories()[t].passes_through(q.key())).collect();
            assert_eq!(chosen, vec![9, 10, 11], "bbox={bbox}");
        }
    }

    #[test]
    fn knn_tie_straddle_at_k_cutoff_still_picks_smallest_slots() {
        // 30 identical trajectories: every eligible segment ties, and
        // the initial k = 8 cutoff hides most of them behind the search
        // frontier. The kNN path must keep growing k instead of letting
        // index-visit order decide the tie, staying in lockstep with
        // the bbox path.
        let trajs: Vec<Trajectory> =
            (0..30).map(|id| traj(id, &[(0.0, 10.0), (100.0, 10.0)])).collect();
        let q = Point::new(50.0, 0.0);
        for bbox in [false, true] {
            let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            ed.use_bbox_pruning = bbox;
            assert_eq!(ed.increase_tf(q, 2), 2);
            let chosen: Vec<usize> =
                (0..30).filter(|&t| ed.trajectories()[t].passes_through(q.key())).collect();
            assert_eq!(chosen, vec![0, 1], "bbox={bbox}");
        }
    }

    #[test]
    fn decrease_tf_breaks_ties_by_smallest_slot() {
        // q sits on the straight line of every trajectory, so all four
        // complete-deletion losses are exactly zero.
        let pts: &[(f64, f64)] = &[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)];
        let trajs: Vec<Trajectory> = (0..4).map(|id| traj(id, pts)).collect();
        let q = Point::new(50.0, 0.0).key();
        let mut ed = DatasetEditor::new(trajs, IndexKind::default(), domain());
        assert_eq!(ed.decrease_tf(q, 2), 2);
        ed.check_invariants();
        assert_eq!(ed.trajectories()[0].count_point(q), 0);
        assert_eq!(ed.trajectories()[1].count_point(q), 0);
        assert!(ed.trajectories()[2].passes_through(q));
        assert!(ed.trajectories()[3].passes_through(q));
    }

    /// Seeded cluster dataset shared by the worker-invariance tests.
    fn clustered_trajs(n: usize, seed: u64) -> Vec<Trajectory> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|id| {
                let cx: f64 = rng.gen_range(0.0..900.0);
                let cy: f64 = rng.gen_range(0.0..900.0);
                let pts: Vec<(f64, f64)> = (0..10)
                    .map(|_| (cx + rng.gen_range(0.0..100.0), cy + rng.gen_range(0.0..100.0)))
                    .collect();
                traj(id as u64, &pts)
            })
            .collect()
    }

    #[test]
    fn bbox_increase_is_worker_count_invariant() {
        let trajs = clustered_trajs(40, 101);
        let total_segments: usize = trajs.iter().map(Trajectory::num_segments).sum();
        let q = Point::new(450.0, 450.0);
        for delta in [1usize, 4, 11] {
            let mut serial = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            serial.use_bbox_pruning = true;
            serial.increase_tf(q, delta);
            for workers in [2usize, 3, 8] {
                let mut par = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
                par.use_bbox_pruning = true;
                par.workers = workers;
                par.increase_tf(q, delta);
                par.check_invariants();
                assert_eq!(
                    par.trajectories(),
                    serial.trajectories(),
                    "delta={delta} workers={workers}"
                );
                assert_eq!(par.loss, serial.loss, "delta={delta} workers={workers}");
                // Every candidate's exact-loss sweep runs at most once
                // (the chunks exclude the seed prefix), so the scan
                // work can never exceed one full pass.
                assert!(
                    par.stats.segments_checked <= total_segments,
                    "delta={delta} workers={workers}: checked {} of {total_segments}",
                    par.stats.segments_checked
                );
            }
        }
    }

    #[test]
    fn parallel_bbox_scan_does_not_rescan_the_seed_prefix() {
        // With delta = candidate count no pruning is possible, so a
        // single-scan implementation checks every segment exactly once.
        // The old chunking handed the *whole* candidate list to the
        // pool after seeding the bound from its prefix, so chunk 0
        // re-scanned the first ∆l candidates and the counter exceeded
        // the total.
        let trajs = clustered_trajs(12, 9);
        let total_segments: usize = trajs.iter().map(Trajectory::num_segments).sum();
        let q = Point::new(450.0, 450.0); // not on any trajectory
        for workers in [2usize, 3, 8] {
            let mut ed = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            ed.use_bbox_pruning = true;
            ed.workers = workers;
            assert_eq!(ed.increase_tf(q, trajs.len()), trajs.len());
            assert_eq!(
                ed.stats.segments_checked, total_segments,
                "workers={workers}: the seed prefix must not be scanned twice"
            );
        }
    }

    #[test]
    fn decrease_is_worker_count_invariant() {
        // Plant a shared point in every trajectory so the decrease scan
        // has a wide candidate set.
        let q = Point::new(500.0, 500.0);
        let trajs: Vec<Trajectory> = clustered_trajs(30, 77)
            .into_iter()
            .map(|mut t| {
                t.push_point(q);
                t
            })
            .collect();
        for delta in [1usize, 7, 30] {
            let mut serial = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
            serial.decrease_tf(q.key(), delta);
            for workers in [2usize, 3, 8] {
                let mut par = DatasetEditor::new(trajs.clone(), IndexKind::default(), domain());
                par.workers = workers;
                par.decrease_tf(q.key(), delta);
                par.check_invariants();
                assert_eq!(
                    par.trajectories(),
                    serial.trajectories(),
                    "delta={delta} workers={workers}"
                );
                assert_eq!(par.loss, serial.loss, "delta={delta} workers={workers}");
            }
        }
    }

    #[test]
    fn decrease_victims_is_a_pure_scan() {
        let q = Point::new(500.0, 500.0);
        let trajs: Vec<Trajectory> = clustered_trajs(10, 5)
            .into_iter()
            .map(|mut t| {
                t.push_point(q);
                t
            })
            .collect();
        let ed = DatasetEditor::new(trajs, IndexKind::default(), domain());
        let before: Vec<Trajectory> = ed.trajectories().to_vec();
        let victims = ed.decrease_victims(q.key(), 3, 4);
        assert_eq!(victims.len(), 3);
        assert_eq!(ed.trajectories(), &before[..], "scan must not modify the dataset");
        assert_eq!(victims, ed.decrease_victims(q.key(), 3, 1), "worker count changed the scan");
    }

    #[test]
    fn bbox_stays_consistent_after_edits() {
        let mut ed = make_dataset_editor();
        let q = Point::new(5000.0, 5000.0); // outside current boxes (clamped into domain use)
        let q = Point::new(q.x.min(1000.0), q.y.min(1000.0));
        ed.use_bbox_pruning = true;
        ed.increase_tf(q, 2);
        ed.check_invariants();
        // After inserting q the cached boxes must cover it.
        for (t, traj) in ed.trajectories().iter().enumerate() {
            if traj.passes_through(q.key()) {
                assert!(ed.bboxes[t].contains(&q));
            }
        }
        ed.decrease_tf(q.key(), 2);
        for (t, traj) in ed.trajectories().iter().enumerate() {
            assert_eq!(ed.bboxes[t], traj.bbox(), "bbox stale after deletion in slot {t}");
        }
    }
}

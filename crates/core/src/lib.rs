//! # trajdp-core
//!
//! The paper's primary contribution: **frequency-based randomization for
//! ε-differentially-private trajectory publishing** (Jin et al., ICDE
//! 2022).
//!
//! Instead of geometrically distorting every sample, the model perturbs
//! the frequency distributions of a small set of *signature points* —
//! locations that are representative (high point frequency, PF) and
//! distinctive (low trajectory frequency, TF) for an individual:
//!
//! * [`freq`] — PF/TF statistics, signature weights, top-`m` signature
//!   extraction, and the candidate set `P` (§III-B1).
//! * [`global`] — Algorithm 1: Laplace perturbation of the global TF
//!   distribution over `P` with budget ε_G, followed by inter-trajectory
//!   modification (Definition 7).
//! * [`local`] — Algorithm 2: the two-stage non-zero-mean Laplace
//!   perturbation of each trajectory's PF distribution with budget ε_L,
//!   followed by intra-trajectory modification (Definition 9).
//! * [`editor`] — trajectory/dataset editors that apply the edit
//!   operations of §IV-A with exact utility-loss accounting while
//!   keeping a spatial index incrementally up to date.
//! * [`pipeline`] — the published models: `PureG`, `PureL`, and the
//!   composed `GL` with ε = ε_G + ε_L (Theorem 1).
//! * [`pool`] — the scoped-thread chunked worker pool behind the
//!   deterministic parallelism of the modification phase (and the
//!   server's sharded executor).
//!
//! ```
//! use trajdp_core::pipeline::{anonymize, Model};
//! use trajdp_core::FreqDpConfig;
//! use trajdp_synth::{generate, GeneratorConfig};
//!
//! let world = generate(&GeneratorConfig {
//!     num_trajectories: 20,
//!     points_per_trajectory: 60,
//!     ..Default::default()
//! });
//! let cfg = FreqDpConfig { m: 5, eps_global: 0.5, eps_local: 0.5, ..Default::default() };
//! let out = anonymize(&world.dataset, Model::Combined, &cfg).unwrap();
//! assert_eq!(out.dataset.len(), world.dataset.len());
//! ```

#![forbid(unsafe_code)]

pub mod editor;
pub mod freq;
pub mod global;
pub mod indexkind;
pub mod local;
pub mod pipeline;
pub mod pool;
pub mod stream;

pub use freq::{FrequencyAnalysis, SignatureEntry};
pub use indexkind::IndexKind;
pub use pipeline::{anonymize, run_model, AnonymizedOutput, FreqDpConfig, Model};
pub use stream::{stream_rng, stream_seed, PHASE_GLOBAL, PHASE_LOCAL};

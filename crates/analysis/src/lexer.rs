//! A small, line-aware Rust token scanner.
//!
//! This is deliberately *not* a full lexer: the invariant checks only
//! need to distinguish identifiers, punctuation, literals, and comments,
//! and to know the 1-based source line of each token. What it must get
//! exactly right — because every check depends on it — is *skipping*
//! string/char literals and comments so that the word `unsafe` inside a
//! doc comment or `"HashMap"` inside a log message never produces a
//! finding. Raw strings (`r#"…"#`), byte strings, nested block comments,
//! and the char-vs-lifetime ambiguity are all handled.

/// Token classes the checks care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `let`, `HashMap`, …).
    Ident,
    /// String literal of any flavour; `text` holds the raw contents
    /// without quotes, hashes, or the `b`/`r` prefix.
    Str,
    /// Character literal (contents not preserved).
    Char,
    /// Lifetime such as `'a` (contents not preserved).
    Lifetime,
    /// Numeric literal (contents preserved loosely, suffix included).
    Num,
    /// A single punctuation character.
    Punct,
    /// `// …` comment; `text` holds everything after the slashes.
    LineComment,
    /// `/* … */` comment; `text` holds the interior.
    BlockComment,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Scans `src` into tokens. Never fails: unterminated literals and
/// comments are closed at end of input, which is good enough for a
/// linter that only runs on code `rustc` already accepted.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Counts newlines in b[from..to] so multi-line tokens advance `line`.
    let count_nl = |from: usize, to: usize| -> u32 {
        b[from..to].iter().filter(|&&c| c == b'\n').count() as u32
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..j].to_string(),
                    line,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1u32;
                while j < b.len() && depth > 0 {
                    if j + 1 < b.len() && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < b.len() && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = if depth == 0 { j - 2 } else { j };
                line += count_nl(i, j);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..end].to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'"' => {
                let start_line = line;
                let (text, j) = scan_quoted(src, i + 1);
                line += count_nl(i, j);
                toks.push(Tok { kind: TokKind::Str, text, line: start_line });
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` and `'x'` are chars;
                // `'ident` not followed by a closing quote is a lifetime.
                let start_line = line;
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    if j < b.len() {
                        j += 1; // escaped char
                    }
                    while j < b.len() && b[j] != b'\'' {
                        j += 1; // \u{…} etc.
                    }
                    i = (j + 1).min(b.len());
                    toks.push(Tok { kind: TokKind::Char, text: String::new(), line: start_line });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j > i + 1 {
                        // 'a' — a char literal spelled with ident chars.
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line: start_line,
                        });
                        i = j + 1;
                    } else if j == i + 1 && j < b.len() && b[j] == b'\'' {
                        // '…' with a single non-ident char, e.g. '(' — but we
                        // landed here only if b[i+1] == '\'' i.e. empty ''.
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line: start_line,
                        });
                        i = j + 1;
                    } else if j == i + 1 {
                        // '(' etc: single-char literal like '(' — consume
                        // the char and the closing quote if present.
                        let mut k = i + 1;
                        if k < b.len() {
                            k += 1;
                        }
                        if k < b.len() && b[k] == b'\'' {
                            k += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line: start_line,
                        });
                        i = k;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: src[i + 1..j].to_string(),
                            line: start_line,
                        });
                        i = j;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = &src[start..j];
                // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let is_raw_prefix = matches!(word, "r" | "br" | "rb");
                let is_byte_prefix = word == "b";
                if is_raw_prefix && j < b.len() && (b[j] == b'"' || b[j] == b'#') {
                    let start_line = line;
                    let (text, k) = scan_raw(src, j);
                    line += count_nl(j, k);
                    toks.push(Tok { kind: TokKind::Str, text, line: start_line });
                    i = k;
                } else if is_byte_prefix && j < b.len() && b[j] == b'"' {
                    let start_line = line;
                    let (text, k) = scan_quoted(src, j + 1);
                    line += count_nl(j, k);
                    toks.push(Tok { kind: TokKind::Str, text, line: start_line });
                    i = k;
                } else if is_byte_prefix && j < b.len() && b[j] == b'\'' {
                    // byte char literal b'x'
                    let mut k = j + 1;
                    if k < b.len() && b[k] == b'\\' {
                        k += 1;
                    }
                    if k < b.len() {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'\'' {
                        k += 1;
                    }
                    toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                    i = k;
                } else {
                    toks.push(Tok { kind: TokKind::Ident, text: word.to_string(), line });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() && j > start
                    {
                        // 1.5 — but not `0..n` (range) or `1.method()`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok { kind: TokKind::Num, text: src[start..j].to_string(), line });
                i = j;
            }
            _ => {
                toks.push(Tok { kind: TokKind::Punct, text: (c as char).to_string(), line });
                i += 1;
            }
        }
    }
    toks
}

/// Scans a conventional `"…"` string body starting just after the
/// opening quote; returns (contents, index just past the closing quote).
fn scan_quoted(src: &str, mut j: usize) -> (String, usize) {
    let b = src.as_bytes();
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j = (j + 2).min(b.len()),
            b'"' => return (src[start..j].to_string(), j + 1),
            _ => j += 1,
        }
    }
    (src[start..j].to_string(), j)
}

/// Scans a raw string starting at the `#`s or quote after the `r`
/// prefix; returns (contents, index just past the final hash/quote).
fn scan_raw(src: &str, mut j: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        // `r#foo` raw identifier, not a string; emit as empty str — the
        // caller has already consumed the prefix, so just back out.
        return (String::new(), j);
    }
    j += 1;
    let start = j;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < b.len() && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (src[start..j].to_string(), k);
            }
        }
        j += 1;
    }
    (src[start..j].to_string(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn skips_strings_and_comments() {
        let src = r##"
            // unsafe in a comment
            /* unsafe in /* a nested */ block */
            let s = "unsafe in a string";
            let r = r#"unsafe in a raw "quoted" string"#;
            let c = 'u';
            fn real_unsafe() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_unsafe".to_string()));
    }

    #[test]
    fn tracks_lines_across_multiline_tokens() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // The str idents must survive (a char mis-scan would eat them).
        assert!(toks.iter().filter(|t| t.is_ident("str")).count() == 2);
    }

    #[test]
    fn comment_text_is_preserved() {
        let toks = lex("// SAFETY: fd is valid\nunsafe {}");
        assert!(matches!(&toks[0].kind, TokKind::LineComment));
        assert!(toks[0].text.contains("SAFETY:"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let ids: Vec<_> = lex("for i in 0..n {}").into_iter().collect();
        assert!(ids.iter().any(|t| t.is_ident("n")));
        assert!(ids.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
    }
}

#![forbid(unsafe_code)]
//! # trajdp-analysis
//!
//! An offline, dependency-free static-analysis pass over the workspace.
//! It exists because the system's hardest-won guarantees are invisible
//! to `rustc`: byte-reproducible anonymization at any worker count, acks
//! only after fsync with no service lock held across disk I/O, and a
//! frozen wire contract documented in PROTOCOL.md. Four checks are
//! token-level scans:
//!
//! * [`checks::unsafe_audit`] — every `unsafe` site needs an adjacent
//!   `// SAFETY:` comment; crates without unsafe must carry
//!   `#![forbid(unsafe_code)]`, the one with it `#![deny(unsafe_op_in_unsafe_fn)]`.
//! * [`checks::lock_io`] — no `Mutex`/`RwLock` guard may be live across
//!   a durable-write call (`sync_all`, `sync_data`, `persist`, `fsync`,
//!   journal `append`/`rewrite`) in `crates/server`.
//! * [`checks::determinism`] — `crates/core` and `crates/mech` must not
//!   iterate default-hasher maps/sets or read wall clocks on
//!   result-affecting paths.
//! * [`checks::drift`] — PROTOCOL.md's error-code, verb, and metric
//!   tables must match `api.rs`/`obs.rs` exactly.
//!
//! Four more consume the [`model`] dataflow layer (function/impl spans,
//! guard liveness, a name-resolved call graph) because the invariants
//! they guard span functions and files:
//!
//! * [`checks::lock_order`] — the server's lock graph must match the
//!   documented hierarchy (journal → queue, journal → store, nothing
//!   else) and be cycle-free.
//! * [`checks::panic_path`] — no `unwrap`/`expect`/`panic!`-family
//!   macro/slice-index reachable from request dispatch without a
//!   `// PANIC: <why impossible>` justification.
//! * [`checks::reactor_blocking`] — the reactor thread must not do
//!   durable I/O, sleep, or take locks outside `impl Executor`.
//! * [`checks::rng_discipline`] — `crates/core` + `crates/mech` derive
//!   every RNG from `core::stream` per-unit streams.
//!
//! Findings are deterministic, `file:line`-addressed, and suppressible
//! only via an inline `// lint: allow(<check>): <reason>` pragma on the
//! flagged line or the line directly above it. A pragma without a
//! reason is itself a finding.

pub mod checks;
pub mod lexer;
pub mod model;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::Tok;

/// The eight invariant checks. The wire names (used in pragmas,
/// diagnostics, and `--check`) are kebab-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    UnsafeAudit,
    LockAcrossIo,
    LockOrder,
    PanicPath,
    ReactorBlocking,
    Determinism,
    RngDiscipline,
    ProtocolDrift,
}

impl Check {
    /// Every check, in run order.
    pub const ALL: [Check; 8] = [
        Check::UnsafeAudit,
        Check::LockAcrossIo,
        Check::LockOrder,
        Check::PanicPath,
        Check::ReactorBlocking,
        Check::Determinism,
        Check::RngDiscipline,
        Check::ProtocolDrift,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Check::UnsafeAudit => "unsafe-audit",
            Check::LockAcrossIo => "lock-across-io",
            Check::LockOrder => "lock-order",
            Check::PanicPath => "panic-path",
            Check::ReactorBlocking => "reactor-blocking",
            Check::Determinism => "determinism",
            Check::RngDiscipline => "rng-discipline",
            Check::ProtocolDrift => "protocol-drift",
        }
    }

    pub fn from_name(s: &str) -> Option<Check> {
        Check::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic. `file` is repo-relative with forward slashes so the
/// output is deterministic across machines.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub check: Check,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check, self.message)
    }
}

/// Suppression pragmas parsed out of one file's comments.
///
/// A pragma `// lint: allow(<check>): <reason>` suppresses findings of
/// that check on the pragma's own line and on the next code line (the
/// line of the first non-comment token after it). Malformed pragmas and
/// pragmas without a reason are reported as findings of the named check
/// (or `unsafe-audit` when even the name is unreadable) so they cannot
/// be used as silent escape hatches.
pub struct Suppressions {
    /// check -> suppressed lines
    allowed: BTreeMap<Check, Vec<u32>>,
    /// Findings produced by malformed pragmas.
    pub errors: Vec<(u32, String)>,
}

impl Suppressions {
    pub fn parse(toks: &[Tok]) -> Suppressions {
        let mut allowed: BTreeMap<Check, Vec<u32>> = BTreeMap::new();
        let mut errors = Vec::new();
        for (idx, t) in toks.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            let body = t.text.trim().trim_start_matches('/').trim_start();
            let Some(rest) = body.strip_prefix("lint:") else { continue };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                errors.push((
                    t.line,
                    "malformed lint pragma: expected `lint: allow(<check>): <reason>`".into(),
                ));
                continue;
            };
            let Some(close) = rest.find(')') else {
                errors.push((t.line, "malformed lint pragma: missing `)`".into()));
                continue;
            };
            let name = rest[..close].trim();
            let Some(check) = Check::from_name(name) else {
                errors.push((t.line, format!("lint pragma names unknown check `{name}`")));
                continue;
            };
            let tail = rest[close + 1..].trim_start();
            let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                errors.push((
                    t.line,
                    format!("lint pragma for `{check}` is missing a reason: `// lint: allow({check}): <why>`"),
                ));
                continue;
            }
            // Target lines: the pragma's own line, and the line of the
            // next non-comment token (the code line it annotates).
            let lines = allowed.entry(check).or_default();
            lines.push(t.line);
            if let Some(next) = toks[idx + 1..].iter().find(|n| !n.is_comment()) {
                lines.push(next.line);
            }
        }
        Suppressions { allowed, errors }
    }

    pub fn is_allowed(&self, check: Check, line: u32) -> bool {
        self.allowed.get(&check).is_some_and(|lines| lines.contains(&line))
    }
}

/// A loaded-and-lexed source file, shared by the checks.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub suppressions: Suppressions,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let toks = lexer::lex(src);
        let suppressions = Suppressions::parse(&toks);
        SourceFile { rel: rel.to_string(), toks, suppressions }
    }

    /// Emits `finding` unless a pragma covers it.
    pub fn push(&self, out: &mut Vec<Finding>, check: Check, line: u32, message: String) {
        if !self.suppressions.is_allowed(check, line) {
            out.push(Finding { file: self.rel.clone(), line, check, message });
        }
    }

    /// Pragma-parse errors become findings unconditionally.
    pub fn pragma_errors(&self, out: &mut Vec<Finding>) {
        for (line, msg) in &self.suppressions.errors {
            out.push(Finding {
                file: self.rel.clone(),
                line: *line,
                check: Check::UnsafeAudit,
                message: msg.clone(),
            });
        }
    }
}

/// Returns true for token ranges inside `#[cfg(test)]` items: test
/// modules and test-only functions are exempt from the determinism and
/// metric-extraction passes (they assert on rendered output and iterate
/// freely). Computes, per token index, whether it is covered.
pub fn cfg_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut ci = 0usize;
    while ci < code.len() {
        let i = code[ci];
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = toks[i].is_punct('#')
            && code.get(ci + 1).is_some_and(|&j| toks[j].is_punct('['))
            && code.get(ci + 2).is_some_and(|&j| toks[j].is_ident("cfg"))
            && code.get(ci + 3).is_some_and(|&j| toks[j].is_punct('('))
            && code.get(ci + 4).is_some_and(|&j| toks[j].is_ident("test"))
            && code.get(ci + 5).is_some_and(|&j| toks[j].is_punct(')'))
            && code.get(ci + 6).is_some_and(|&j| toks[j].is_punct(']'));
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        // Skip the attribute itself, any further attributes, then the
        // item: everything up to a `;` before any brace, or the first
        // balanced `{ … }` group.
        let mut cj = ci + 7;
        // Further attributes (e.g. #[test] after #[cfg(test)]).
        while cj < code.len() && toks[code[cj]].is_punct('#') {
            let mut depth = 0i32;
            cj += 1; // past '#'
            while cj < code.len() {
                let t = &toks[code[cj]];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                cj += 1;
            }
        }
        let mut brace = 0i32;
        let mut entered = false;
        while cj < code.len() {
            let t = &toks[code[cj]];
            if t.is_punct('{') {
                brace += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace -= 1;
                if entered && brace == 0 {
                    cj += 1;
                    break;
                }
            } else if t.is_punct(';') && !entered {
                cj += 1;
                break;
            }
            cj += 1;
        }
        // Mark every token index (including comments) in [i .. end).
        let end_tok = if cj < code.len() { code[cj] } else { toks.len() };
        for m in mask.iter_mut().take(end_tok).skip(i) {
            *m = true;
        }
        ci = cj;
    }
    mask
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata, and the linter's own fixture corpus (which seeds
/// deliberate violations). Output is sorted for determinism.
pub fn collect_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Repo-relative display path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Runs all eight checks over the workspace at `root` and returns the
/// sorted findings. This is what `main` and the integration tests call.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    run_workspace_filtered(root, None)
}

/// [`run_workspace`], optionally restricted to a single check
/// (`--check <name>`). Note that pragma-grammar errors are reported by
/// the unsafe-audit pass, so a filtered run of another check will not
/// surface them.
pub fn run_workspace_filtered(root: &Path, only: Option<Check>) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let want = |c: Check| only.is_none() || only == Some(c);
    if want(Check::UnsafeAudit) {
        checks::unsafe_audit::run(root, &mut findings)?;
    }
    if want(Check::LockAcrossIo) {
        checks::lock_io::run(root, &mut findings)?;
    }
    if want(Check::LockOrder) {
        checks::lock_order::run(root, &mut findings)?;
    }
    if want(Check::PanicPath) {
        checks::panic_path::run(root, &mut findings)?;
    }
    if want(Check::ReactorBlocking) {
        checks::reactor_blocking::run(root, &mut findings)?;
    }
    if want(Check::Determinism) {
        checks::determinism::run(root, &mut findings)?;
    }
    if want(Check::RngDiscipline) {
        checks::rng_discipline::run(root, &mut findings)?;
    }
    if want(Check::ProtocolDrift) {
        checks::drift::run(root, &mut findings)?;
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_grammar() {
        let sf = SourceFile::from_source(
            "x.rs",
            "// lint: allow(determinism): sorted immediately below\nlet a = 1;\n\
             // lint: allow(determinism)\nlet b = 2;\n\
             // lint: allow(bogus-check): whatever\nlet c = 3;\n",
        );
        assert!(sf.suppressions.is_allowed(Check::Determinism, 1));
        assert!(sf.suppressions.is_allowed(Check::Determinism, 2));
        assert!(!sf.suppressions.is_allowed(Check::Determinism, 4));
        assert_eq!(sf.suppressions.errors.len(), 2);
        assert!(sf.suppressions.errors[0].1.contains("missing a reason"));
        assert!(sf.suppressions.errors[1].1.contains("unknown check"));
    }

    #[test]
    fn cfg_test_mask_covers_test_modules() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\nfn after() {}";
        let toks = lexer::lex(src);
        let mask = cfg_test_mask(&toks);
        let idx_of = |name: &str| toks.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!mask[idx_of("live")]);
        assert!(mask[idx_of("tests")]);
        assert!(mask[idx_of("t")]);
        assert!(!mask[idx_of("after")]);
    }
}

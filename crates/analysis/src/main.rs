#![forbid(unsafe_code)]
//! `trajdp-analysis` — run the workspace invariant lints.
//!
//! ```text
//! cargo run -p trajdp-analysis --release [-- --root <path>]
//! ```
//!
//! Exit codes: `0` no findings, `1` findings (printed one per line as
//! `file:line: [check] message`, sorted), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    // `cargo run -p trajdp-analysis` sets CARGO_MANIFEST_DIR to
    // crates/analysis; the workspace root is two levels up. Fall back
    // to walking up from the current directory to a `[workspace]`
    // manifest so the binary also works when invoked directly.
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return Some(root.to_path_buf());
            }
        }
    }
    let cwd = std::env::current_dir().ok()?;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

fn main() -> ExitCode {
    let mut explicit_root = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => explicit_root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("trajdp-analysis: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: trajdp-analysis [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("trajdp-analysis: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = workspace_root(explicit_root) else {
        eprintln!("trajdp-analysis: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    match trajdp_analysis::run_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("trajdp-analysis: workspace clean (4 checks)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("trajdp-analysis: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("trajdp-analysis: {e}");
            ExitCode::from(2)
        }
    }
}

#![forbid(unsafe_code)]
//! `trajdp-analysis` — run the workspace invariant lints.
//!
//! ```text
//! cargo run -p trajdp-analysis --release [-- --root <path>] \
//!     [--check <name>] [--format text|json]
//! ```
//!
//! Exit codes: `0` no findings, `1` findings, `2` usage or I/O error.
//! Text output is one finding per line as `file:line: [check] message`,
//! sorted; `--format json` emits the same findings as a JSON array of
//! `{"file", "line", "check", "message"}` objects (an empty array when
//! clean) for CI annotation tooling. `--check` restricts the run to a
//! single check by its kebab-case name.

use std::path::PathBuf;
use std::process::ExitCode;

use trajdp_analysis::{Check, Finding};

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    // `cargo run -p trajdp-analysis` sets CARGO_MANIFEST_DIR to
    // crates/analysis; the workspace root is two levels up. Fall back
    // to walking up from the current directory to a `[workspace]`
    // manifest so the binary also works when invoked directly.
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return Some(root.to_path_buf());
            }
        }
    }
    let cwd = std::env::current_dir().ok()?;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(findings: &[Finding]) {
    println!("[");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        println!(
            "  {{\"file\": \"{}\", \"line\": {}, \"check\": \"{}\", \"message\": \"{}\"}}{comma}",
            json_escape(&f.file),
            f.line,
            f.check,
            json_escape(&f.message)
        );
    }
    println!("]");
}

fn main() -> ExitCode {
    let mut explicit_root = None;
    let mut only: Option<Check> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => explicit_root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("trajdp-analysis: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--check" => match args.next().as_deref().map(Check::from_name) {
                Some(Some(c)) => only = Some(c),
                _ => {
                    let names: Vec<&str> = Check::ALL.iter().map(|c| c.name()).collect();
                    eprintln!("trajdp-analysis: --check requires one of: {}", names.join(", "));
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("trajdp-analysis: --format requires `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: trajdp-analysis [--root <workspace-root>] \
                     [--check <name>] [--format text|json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("trajdp-analysis: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = workspace_root(explicit_root) else {
        eprintln!("trajdp-analysis: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let checks_run = if only.is_some() { 1 } else { Check::ALL.len() };
    match trajdp_analysis::run_workspace_filtered(&root, only) {
        Ok(findings) if findings.is_empty() => {
            if format == Format::Json {
                print_json(&findings);
            }
            eprintln!(
                "trajdp-analysis: workspace clean ({checks_run} check{})",
                if checks_run == 1 { "" } else { "s" }
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            match format {
                Format::Text => {
                    for f in &findings {
                        println!("{f}");
                    }
                }
                Format::Json => print_json(&findings),
            }
            eprintln!("trajdp-analysis: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("trajdp-analysis: {e}");
            ExitCode::from(2)
        }
    }
}

//! A lightweight dataflow model recovered from the token stream.
//!
//! The PR 8 checks were per-line: each looked at a window of tokens and
//! never needed to know *which function* it was in or *which locks were
//! held*. The concurrency and panic invariants do: "no blocking call on
//! the reactor thread" is a property of functions, "queue is never held
//! while the journal is taken" is a property of guard liveness, and
//! "no panic on a request path" is a property of the call graph. This
//! module recovers exactly that much structure — and deliberately no
//! more — from the existing lexer:
//!
//! * **Function and impl spans.** Every `fn` item with a body, its
//!   1-based line, and the `impl` type it lives in. Closures belong to
//!   their enclosing function (which is the attribution the checks
//!   want: the executor worker closure *is* `Executor::new`'s code).
//! * **Brace-scoped guard liveness.** A `let`-bound lock guard
//!   (initializer ends in a no-argument `.lock()`/`.try_lock()`/
//!   `.read()`/`.write()`, possibly through `.unwrap()`/`.expect(…)`/
//!   `?`) is live until `drop(name)` or its enclosing block closes.
//!   Guards bound through an alias (`let (lock, cvar) = &*self.inner;`)
//!   resolve to the aliased field, so the lock's *name* survives the
//!   destructuring idiom the workspace uses for `Mutex`+`Condvar`
//!   pairs.
//! * **An event stream.** Lock acquisitions (with the set of locks held
//!   at that point), calls (name-based, no type inference), durable-I/O
//!   calls, and panic-capable sites (`unwrap`, `expect`, `panic!`,
//!   `unreachable!`, slice indexing), each attributed to its function.
//!
//! `#[cfg(test)]` items are excluded entirely: every model-based check
//! binds the production binary, and tests routinely hold locks or
//! unwrap to stage scenarios.
//!
//! Name-based call resolution is deliberately *lite*: a call `x.f(…)`
//! resolves to every function named `f` in the scanned file set. That
//! over-approximates (good for an auditor) except where a std method
//! name shadows a workspace function (`insert`, `take`, `new`, …) —
//! those are listed in [`STD_SHADOWED`] and never followed, otherwise
//! `q.states.insert(…)` under the queue mutex would "call"
//! `DatasetStore::insert` and invent a queue → store edge.

use crate::lexer::{Tok, TokKind};
use crate::SourceFile;

/// No-argument methods that acquire a `Mutex`/`RwLock` guard. The
/// no-argument shape distinguishes them from `io::Read::read(&mut buf)`
/// and `io::Write::write(&buf)`.
pub const LOCK_METHODS: [&str; 4] = ["lock", "try_lock", "read", "write"];

/// Durable-write entry points (same inventory as the lock-across-io
/// check): a call to any of these is disk I/O with an fsync in its
/// contract.
pub const IO_METHODS: [&str; 6] =
    ["sync_all", "sync_data", "fsync", "persist", "append", "rewrite"];

/// Method names that are both std-library vocabulary and workspace
/// function names. Name-based call resolution never follows these:
/// nearly every call site is the std method, and following them would
/// wire `HashMap::insert` to `DatasetStore::insert` (and similar) —
/// inventing call edges that poison both the lock graph and the
/// panic-path reachable set. Their *direct* effects are still seen:
/// lock acquisitions inside them fire their own events.
pub const STD_SHADOWED: [&str; 22] = [
    "append", "clear", "clone", "count", "default", "drop", "get", "get_mut", "insert", "is_empty",
    "iter", "len", "lock", "new", "next", "pop", "push", "read", "recv", "send", "take", "write",
];

/// Rust keywords, used to tell `if (…)` from a call and `&mut [u8]`
/// from an index expression.
const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "where",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
        || s == "self"
        || s == "Self"
        || s == "unsafe"
        || s == "use"
        || s == "while"
        || s == "yield"
}

/// One function item with a body.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Type name of the enclosing `impl` block, if any (`impl Foo` and
    /// `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// Line of the function's name token.
    pub line: u32,
}

/// What happened at one point in a function body.
#[derive(Debug)]
pub enum EventKind {
    /// A no-argument lock-method call; `lock` is the resolved lock name
    /// (receiver field through aliases, or the impl type for
    /// `self.lock()`-style helpers).
    Acquire { lock: String },
    /// A call, by bare callee name (last path segment).
    Call { callee: String },
    /// A durable-write call ([`IO_METHODS`]).
    Io { method: String },
    /// A panic-capable site; `what` is a display label like
    /// `` `unwrap()` ``.
    Panic { what: String },
}

/// One event, attributed to the innermost enclosing function (if any)
/// with the lock names live at that point.
#[derive(Debug)]
pub struct Event {
    pub kind: EventKind,
    pub line: u32,
    /// Index into [`FileModel::fns`]; `None` for top-level code.
    pub fn_idx: Option<usize>,
    /// Resolved names of the lock guards live at this event.
    pub held: Vec<String>,
}

/// The recovered model of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub fns: Vec<FnInfo>,
    pub events: Vec<Event>,
}

impl FileModel {
    /// Events belonging to function `fn_idx`, in source order.
    pub fn fn_events(&self, fn_idx: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.fn_idx == Some(fn_idx))
    }
}

/// A live lock guard.
struct Guard {
    /// The `let` binding name (`drop(name)` kills it).
    binding: String,
    /// Resolved lock name.
    lock: String,
    /// Brace depth at the binding; the guard dies when the block closes.
    depth: i32,
    /// Code-token index of the statement's `;` — the guard is not live
    /// during its own initializer.
    activate_after: usize,
}

/// A `let`-introduced alias of a field: `let (lock, cvar) = &*self.inner;`
/// records `lock -> inner` and `cvar -> inner`.
struct Alias {
    name: String,
    target: String,
    depth: i32,
}

/// Builds the model for one file. Test items are excluded.
pub fn build(sf: &SourceFile) -> FileModel {
    let mask = crate::cfg_test_mask(&sf.toks);
    let code: Vec<&Tok> = sf
        .toks
        .iter()
        .zip(mask.iter())
        .filter(|(t, &m)| !t.is_comment() && !m)
        .map(|(t, _)| t)
        .collect();

    let mut model = FileModel::default();
    // `{`-index → name of the impl block that opens there.
    let mut pending_impls: std::collections::BTreeMap<usize, String> = Default::default();
    // `{`-index → fn index whose body opens there.
    let mut pending_fns: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: Vec<Alias> = Vec::new();
    let mut depth: i32 = 0;

    let resolve_alias = |aliases: &[Alias], name: &str| -> String {
        let mut cur = name.to_string();
        for _ in 0..8 {
            match aliases.iter().rev().find(|a| a.name == cur) {
                Some(a) if a.target != cur => cur = a.target.clone(),
                _ => break,
            }
        }
        cur
    };

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];

        if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_impls.remove(&i) {
                impl_stack.push((name, depth));
            }
            if let Some(fi) = pending_fns.remove(&i) {
                fn_stack.push((fi, depth));
            }
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            while impl_stack.last().is_some_and(|&(_, d)| d >= depth) {
                impl_stack.pop();
            }
            while fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                fn_stack.pop();
            }
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            aliases.retain(|a| a.depth <= depth);
            i += 1;
            continue;
        }

        // ---- item structure ------------------------------------------
        if t.is_ident("impl") && at_item_position(&code, i) {
            if let Some((name, open)) = parse_impl_header(&code, i) {
                pending_impls.insert(open, name);
            }
        }
        if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name_tok = code[i + 1];
            if let Some(open) = find_body_open(&code, i + 2) {
                let fi = model.fns.len();
                model.fns.push(FnInfo {
                    name: name_tok.text.clone(),
                    impl_type: impl_stack.last().map(|(n, _)| n.clone()),
                    line: name_tok.line,
                });
                pending_fns.insert(open, fi);
            }
        }

        // ---- guard death ---------------------------------------------
        if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.binding != name.text);
            }
        }

        // ---- `let` bindings: aliases and guards ----------------------
        if t.is_ident("let") {
            if let Some(alias) = parse_alias(&code, i, depth, &|n| resolve_alias(&aliases, n)) {
                aliases.extend(alias);
            } else if let Some(g) = parse_guard_let(
                &code,
                i,
                depth,
                &|n| resolve_alias(&aliases, n),
                impl_stack.last().map(|(n, _)| n.as_str()),
            ) {
                guards.push(g);
            }
        }

        let fn_idx = fn_stack.last().map(|&(fi, _)| fi);
        let held = |guards: &[Guard], upto: usize| -> Vec<String> {
            let mut h: Vec<String> =
                guards.iter().filter(|g| g.activate_after < upto).map(|g| g.lock.clone()).collect();
            h.sort();
            h.dedup();
            h
        };

        // ---- lock acquisition (any no-argument lock-method call) -----
        if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| LOCK_METHODS.iter().any(|l| n.is_ident(l)))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let lock = receiver_name(&code, i, &|n| resolve_alias(&aliases, n))
                .map(|n| {
                    if n == "self" {
                        impl_stack.last().map(|(t, _)| t.clone()).unwrap_or(n)
                    } else {
                        n
                    }
                })
                .unwrap_or_else(|| "<expr>".to_string());
            model.events.push(Event {
                kind: EventKind::Acquire { lock },
                line: code[i + 1].line,
                fn_idx,
                held: held(&guards, i),
            });
        }

        // ---- durable I/O ---------------------------------------------
        if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| IO_METHODS.iter().any(|m| n.is_ident(m)))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            // `OpenOptions::append(true)` is flag configuration.
            let is_flag = code[i + 1].is_ident("append")
                && code.get(i + 3).is_some_and(|n| n.is_ident("true"));
            if !is_flag {
                model.events.push(Event {
                    kind: EventKind::Io { method: code[i + 1].text.clone() },
                    line: code[i + 1].line,
                    fn_idx,
                    held: held(&guards, i),
                });
            }
        }

        // ---- calls ---------------------------------------------------
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && code[i - 1].is_ident("fn"))
            && !LOCK_METHODS.contains(&t.text.as_str())
        {
            model.events.push(Event {
                kind: EventKind::Call { callee: t.text.clone() },
                line: t.line,
                fn_idx,
                held: held(&guards, i),
            });
        }

        // ---- panic-capable sites -------------------------------------
        if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_ident("unwrap"))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            model.events.push(Event {
                kind: EventKind::Panic { what: "`unwrap()`".to_string() },
                line: code[i + 1].line,
                fn_idx,
                held: held(&guards, i),
            });
        }
        // `.expect("…")` with a string literal — the `Result`/`Option`
        // method. (The JSON parser has its own `expect(b'"')` which is
        // ordinary error handling, hence the literal requirement.)
        if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_ident("expect"))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.kind == TokKind::Str)
        {
            model.events.push(Event {
                kind: EventKind::Panic { what: "`expect()`".to_string() },
                line: code[i + 1].line,
                fn_idx,
                held: held(&guards, i),
            });
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            model.events.push(Event {
                kind: EventKind::Panic { what: format!("`{}!`", t.text) },
                line: t.line,
                fn_idx,
                held: held(&guards, i),
            });
        }
        // Indexing: `expr[…]` can panic on an out-of-bounds index or a
        // non-boundary range. The previous token must be a value — an
        // identifier, `)` or `]` — which excludes array types
        // (`[u8; 2]`), attributes (`#[…]`) and macros (`vec![…]`).
        if t.is_punct('[') && i > 0 {
            let p = code[i - 1];
            let is_value = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                || p.is_punct(')')
                || p.is_punct(']');
            if is_value {
                model.events.push(Event {
                    kind: EventKind::Panic { what: "slice/array index".to_string() },
                    line: t.line,
                    fn_idx,
                    held: held(&guards, i),
                });
            }
        }

        i += 1;
    }
    model
}

/// Is the `impl` at `i` an item (vs. `-> impl Trait` / `x: impl Trait`)?
fn at_item_position(code: &[&Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = code[i - 1];
    p.is_punct('}') || p.is_punct(';') || p.is_punct('{') || p.is_punct(']') || p.is_ident("unsafe")
}

/// Parses an `impl` header starting at the `impl` token; returns the
/// implemented type's last path segment and the index of the opening
/// `{`. `impl Trait for Type` records `Type`.
fn parse_impl_header(code: &[&Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && angle > 0 && !(j > 0 && code[j - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') {
                return name.map(|n| (n, j));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                name = None; // the type follows; the trait path is discarded
            } else if t.kind == TokKind::Ident && !t.is_ident("where") && !is_keyword(&t.text) {
                name = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Finds the `{` opening a fn body, scanning from just past the fn
/// name. Returns `None` for bodyless declarations (`fn f();` in extern
/// blocks and traits).
fn find_body_open(code: &[&Tok], mut j: usize) -> Option<usize> {
    let mut nest = 0i32;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            nest -= 1;
        } else if nest == 0 {
            if t.is_punct('{') {
                return Some(j);
            }
            if t.is_punct(';') {
                return None;
            }
        }
        j += 1;
    }
    None
}

/// Walks back from the `.` of a method call, collecting the dotted
/// identifier chain; returns the lock's resolved name — the last field
/// segment (`self.journal.lock()` → `journal`), through aliases, or
/// `self` itself for `self.lock()`-style helper calls (the caller maps
/// that to the impl type).
fn receiver_name(code: &[&Tok], dot: usize, resolve: &dyn Fn(&str) -> String) -> Option<String> {
    let mut j = dot;
    let mut last_ident: Option<&Tok> = None;
    let mut first_ident: Option<&Tok> = None;
    // Accept `ident (. ident | :: ident)*` right-to-left.
    while j > 0 {
        let p = code[j - 1];
        if p.kind == TokKind::Ident {
            if last_ident.is_none() {
                last_ident = Some(p);
            }
            first_ident = Some(p);
            j -= 1;
        } else if p.is_punct('.') || p.is_punct(':') {
            // `.` or `::` continues the chain only if an ident follows
            // it on the left.
            let ident_left = j >= 2 && code[j - 2].kind == TokKind::Ident;
            let second_colon = j >= 3 && p.is_punct(':') && code[j - 2].is_punct(':');
            if ident_left || second_colon {
                j -= 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let last = last_ident?;
    if last.is_ident("self") && first_ident.map(|f| f.text.as_str()) == Some("self") {
        return Some("self".to_string());
    }
    Some(resolve(&last.text))
}

/// Recognizes the alias-introducing `let` shapes:
/// `let [mut] A = &[mut][*] CHAIN;`, `let (A, B) = &*CHAIN;`,
/// `let [mut] A = Arc::clone(&CHAIN);`.
fn parse_alias(
    code: &[&Tok],
    i: usize,
    depth: i32,
    resolve: &dyn Fn(&str) -> String,
) -> Option<Vec<Alias>> {
    let mut j = i + 1;
    if code.get(j).is_some_and(|n| n.is_ident("mut")) {
        j += 1;
    }
    // Collect the bound names: one ident, or a tuple of idents.
    let mut names = Vec::new();
    if code.get(j).is_some_and(|n| n.is_punct('(')) {
        j += 1;
        while let Some(t) = code.get(j) {
            if t.kind == TokKind::Ident {
                names.push(t.text.clone());
                j += 1;
            } else if t.is_punct(',') {
                j += 1;
            } else if t.is_punct(')') {
                j += 1;
                break;
            } else {
                return None;
            }
        }
    } else if code.get(j).is_some_and(|n| n.kind == TokKind::Ident && !is_keyword(&n.text)) {
        names.push(code[j].text.clone());
        j += 1;
    } else {
        return None;
    }
    if !code.get(j).is_some_and(|n| n.is_punct('=')) {
        return None;
    }
    j += 1;
    // `Arc::clone(&CHAIN)` unwraps to `&CHAIN`.
    if code.get(j).is_some_and(|n| n.is_ident("Arc"))
        && code.get(j + 1).is_some_and(|n| n.is_punct(':'))
        && code.get(j + 2).is_some_and(|n| n.is_punct(':'))
        && code.get(j + 3).is_some_and(|n| n.is_ident("clone"))
        && code.get(j + 4).is_some_and(|n| n.is_punct('('))
    {
        j += 5;
    }
    if !code.get(j).is_some_and(|n| n.is_punct('&')) {
        return None;
    }
    j += 1;
    while code.get(j).is_some_and(|n| n.is_punct('*') || n.is_ident("mut")) {
        j += 1;
    }
    // CHAIN: ident ((. | ::) ident)* — take the last segment.
    let mut target: Option<String> = None;
    while let Some(t) = code.get(j) {
        if t.kind == TokKind::Ident {
            target = Some(t.text.clone());
            j += 1;
        } else if t.is_punct('.') || t.is_punct(':') {
            j += 1;
        } else {
            break;
        }
    }
    // The initializer must end here (`;` or `)`): anything further is a
    // method call and the binding is not a plain alias.
    if !code.get(j).is_some_and(|n| n.is_punct(';') || n.is_punct(')')) {
        return None;
    }
    let target = target?;
    let target = if target == "self" { return None } else { resolve(&target) };
    Some(names.into_iter().map(|name| Alias { name, target: target.clone(), depth }).collect())
}

/// Recognizes a guard-binding `let`: `let [mut] NAME = …[.lock()]…;` or
/// `let Ok([mut] NAME) = …[.lock()] else { … };` where the lock call is
/// at the top of the initializer expression and the chain ends there
/// (allowing `.unwrap()`, `.expect(…)`, `.ok()`, `.map_err(…)`,
/// `.unwrap_or_else(…)`, `?`, and a let-else tail). A chain that
/// continues (`rx.lock().expect(…).recv()`) is a statement-scoped
/// temporary, not a live guard.
fn parse_guard_let(
    code: &[&Tok],
    i: usize,
    depth: i32,
    resolve: &dyn Fn(&str) -> String,
    impl_type: Option<&str>,
) -> Option<Guard> {
    let mut j = i + 1;
    // Optional `Ok( … )` pattern wrapper for fallible lock helpers.
    let wrapped = code.get(j).is_some_and(|n| n.is_ident("Ok"))
        && code.get(j + 1).is_some_and(|n| n.is_punct('('));
    if wrapped {
        j += 2;
    }
    if code.get(j).is_some_and(|n| n.is_ident("mut")) {
        j += 1;
    }
    let name_tok = code.get(j).filter(|n| n.kind == TokKind::Ident && !is_keyword(&n.text))?;
    if wrapped {
        if !code.get(j + 1).is_some_and(|n| n.is_punct(')')) {
            return None;
        }
        j += 1;
    }
    if !code.get(j + 1).is_some_and(|n| n.is_punct('=') || n.is_punct(':')) {
        return None;
    }
    let binding = name_tok.text.clone();
    // Scan the initializer to its `;`, tracking nesting; find a
    // top-of-expression no-argument lock call.
    let mut k = j + 1;
    let mut nest = 0i32;
    let mut brace_nest = 0i32;
    let mut saw_eq = false;
    let mut lock_at: Option<usize> = None;
    let mut end = code.len();
    while k < code.len() {
        let c = code[k];
        if c.is_punct('(') || c.is_punct('[') || c.is_punct('{') {
            nest += 1;
            if c.is_punct('{') {
                brace_nest += 1;
            }
        } else if c.is_punct(')') || c.is_punct(']') || c.is_punct('}') {
            nest -= 1;
            if c.is_punct('}') {
                brace_nest -= 1;
            }
            if nest < 0 {
                end = k;
                break;
            }
        } else if c.is_punct(';') && nest == 0 {
            end = k;
            break;
        } else if c.is_punct('=') && nest == 0 {
            saw_eq = true;
        } else if saw_eq
            && brace_nest == 0
            && c.is_punct('.')
            && code.get(k + 1).is_some_and(|m| LOCK_METHODS.iter().any(|l| m.is_ident(l)))
            && code.get(k + 2).is_some_and(|m| m.is_punct('('))
            && code.get(k + 3).is_some_and(|m| m.is_punct(')'))
        {
            lock_at = Some(k);
        }
        k += 1;
    }
    let lock_at = lock_at?;
    // Chain-end check: after `.lock()`, only error-absorbing adapters
    // and `?` may follow before the statement ends; `else` begins a
    // let-else tail, which also ends the chain.
    const CHAIN_TAIL: [&str; 5] = ["unwrap", "expect", "ok", "map_err", "unwrap_or_else"];
    let mut m = lock_at + 4;
    loop {
        if m >= end {
            break;
        }
        let c = code[m];
        if c.is_punct('?') {
            m += 1;
        } else if c.is_ident("else") {
            break;
        } else if c.is_punct('.')
            && code.get(m + 1).is_some_and(|n| CHAIN_TAIL.iter().any(|t| n.is_ident(t)))
            && code.get(m + 2).is_some_and(|n| n.is_punct('('))
        {
            // Skip the balanced argument list.
            let mut nest = 0i32;
            m += 2;
            while m < end {
                if code[m].is_punct('(') {
                    nest += 1;
                } else if code[m].is_punct(')') {
                    nest -= 1;
                    if nest == 0 {
                        m += 1;
                        break;
                    }
                }
                m += 1;
            }
        } else {
            return None; // the chain continues: a temporary, not a guard
        }
    }
    let lock = receiver_name(code, lock_at, resolve)
        .map(|n| if n == "self" { impl_type.unwrap_or("self").to_string() } else { n })
        .unwrap_or_else(|| "<expr>".to_string());
    Some(Guard { binding, lock, depth, activate_after: end })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn model(src: &str) -> FileModel {
        build(&SourceFile::from_source("t.rs", src))
    }

    #[test]
    fn recovers_fns_and_impl_types() {
        let m = model(
            "impl Default for Store { fn default() -> Self { Self::new() } }\n\
             impl Store { fn lock(&self) {} }\n\
             fn free() {}\n\
             extern \"C\" { fn poll(n: i32) -> i32; }",
        );
        let names: Vec<(&str, Option<&str>)> =
            m.fns.iter().map(|f| (f.name.as_str(), f.impl_type.as_deref())).collect();
        assert_eq!(
            names,
            vec![("default", Some("Store")), ("lock", Some("Store")), ("free", None)],
            "bodyless extern fns are skipped"
        );
    }

    #[test]
    fn closure_events_belong_to_the_enclosing_fn() {
        let m = model(
            "impl Executor { fn new(&self) { std::thread::spawn(move || loop {\n\
               let g = rx.lock().unwrap();\n\
             }); } }",
        );
        let acq = m
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Acquire { .. }))
            .expect("acquire seen");
        assert_eq!(acq.fn_idx, Some(0));
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("Executor"));
    }

    #[test]
    fn guard_liveness_and_aliases() {
        let m = model(
            "fn f(&self) {\n\
               let (lock, cvar) = &*self.inner;\n\
               let journal = self.journal.lock().unwrap();\n\
               let q = lock.lock().unwrap();\n\
               drop(q);\n\
               self.store.pin(h);\n\
             }",
        );
        let acquires: Vec<(&str, &[String])> = m
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { lock } => Some((lock.as_str(), e.held.as_slice())),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2);
        assert_eq!(acquires[0].0, "journal");
        assert!(acquires[0].1.is_empty());
        assert_eq!(acquires[1].0, "inner", "alias resolves through the tuple destructuring");
        assert_eq!(acquires[1].1, ["journal"]);
        let pin = m
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { callee } if callee == "pin"))
            .expect("call seen");
        assert_eq!(pin.held, ["journal"], "q was dropped; journal is still live");
    }

    #[test]
    fn fallible_lock_shapes_still_bind_guards() {
        let m = model(
            "fn f(&self) {\n\
               let j = self.journal.lock().map_err(|_| internal())?;\n\
               let Ok(q) = self.inner.lock() else { return Ok(()) };\n\
               self.file.sync_all().map_err(io_err)?;\n\
             }",
        );
        let io = m.events.iter().find(|e| matches!(e.kind, EventKind::Io { .. })).unwrap();
        assert_eq!(io.held, ["inner", "journal"], "{:?}", io.held);
    }

    #[test]
    fn consumed_temporary_is_not_a_guard() {
        let m = model(
            "fn f(&self) {\n\
               let task = match rx.lock().expect(\"poisoned\").recv() { Ok(t) => t, Err(_) => return };\n\
               self.file.sync_all().unwrap();\n\
             }",
        );
        let io = m.events.iter().find(|e| matches!(e.kind, EventKind::Io { .. })).unwrap();
        assert!(io.held.is_empty(), "{:?}", io.held);
    }

    #[test]
    fn self_lock_helper_resolves_to_the_impl_type() {
        let m = model("impl Store { fn count(&self) -> usize { let s = self.lock(); s.n } }");
        let acq = m
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Acquire { lock } => Some(lock.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(acq, "Store");
    }

    #[test]
    fn panic_sites_are_classified() {
        let m = model(
            "fn f(v: &[u8], m: &M) {\n\
               let a = v[0];\n\
               let b = m.get(k).unwrap();\n\
               let c = r.expect(\"boom\");\n\
               self.expect(b'\"');\n\
               let t: [u8; 2] = [0, 1];\n\
               if bad { panic!(\"no\") }\n\
             }",
        );
        let labels: Vec<&str> = m
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Panic { what } => Some(what.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["slice/array index", "`unwrap()`", "`expect()`", "`panic!`"]);
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let m = model("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() {}");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "live");
        assert!(m.events.iter().all(|e| !matches!(e.kind, EventKind::Panic { .. })));
    }
}

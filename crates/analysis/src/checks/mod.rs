//! The eight invariant checks. Each exposes a pure `check_source`/
//! `check_sources`-style function (so the fixture tests can drive it on
//! literal sources) and a `run` entry point that walks the relevant
//! part of the workspace. The PR 8 checks (`unsafe_audit`, `lock_io`,
//! `determinism`, `drift`) are per-line token scans; the PR 9 checks
//! (`lock_order`, `panic_path`, `reactor_blocking`, `rng_discipline`)
//! consume the [`crate::model`] dataflow layer.

pub mod determinism;
pub mod drift;
pub mod lock_io;
pub mod lock_order;
pub mod panic_path;
pub mod reactor_blocking;
pub mod rng_discipline;
pub mod unsafe_audit;

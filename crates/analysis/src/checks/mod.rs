//! The four invariant checks. Each exposes a pure `check_source`-style
//! function (so the fixture tests can drive it on literal sources) and a
//! `run` entry point that walks the relevant part of the workspace.

pub mod determinism;
pub mod drift;
pub mod lock_io;
pub mod unsafe_audit;

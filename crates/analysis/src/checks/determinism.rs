//! Determinism lint (the byte-reproducibility contract).
//!
//! `crates/core` and `crates/mech` promise byte-identical output for a
//! given seed at any worker count (`core::stream` gives every unit its
//! own RNG stream; tie-breaking is total). Two things silently break
//! that promise:
//!
//! * iterating a default-hasher `HashMap`/`HashSet` — iteration order
//!   varies across processes (SipHash keys are randomized), so any
//!   order-sensitive consumer becomes run-dependent;
//! * wall-clock reads (`SystemTime::now`, `Instant::now`) feeding
//!   values into results.
//!
//! The check tracks names *declared* with a `HashMap`/`HashSet` type
//! (let annotations, struct fields, and `HashMap::new()`-style
//! initializers) and flags order-yielding method calls and `for` loops
//! over them, plus any clock read. `#[cfg(test)]` items are exempt —
//! tests may iterate freely. Legitimate sites (iterate-then-sort,
//! observability timings that never touch released data) carry
//! `// lint: allow(determinism): …` pragmas explaining why.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{Tok, TokKind};
use crate::{cfg_test_mask, collect_rs_files, rel_path, Check, Finding, SourceFile};

/// Methods whose results depend on hash-iteration order.
const ORDER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

const SET_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Collects identifiers declared with a hash-map/set type anywhere in
/// the file: `name: …HashMap<…>…` (fields, params, let annotations) and
/// `let name = …HashMap::new()…` initializers.
fn tracked_names(code: &[&Tok]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : <up to 16 tokens containing HashMap/HashSet>`
        if code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !code.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let window = &code[i + 2..code.len().min(i + 18)];
            let mut hit = false;
            let mut angle = 0i32;
            for w in window {
                // The annotation ends at the next field/param/statement
                // boundary; `,` inside generics does not end it.
                if w.is_punct('<') {
                    angle += 1;
                } else if w.is_punct('>') {
                    angle -= 1;
                }
                if w.is_punct(';')
                    || w.is_punct('=')
                    || w.is_punct('{')
                    || w.is_punct(')')
                    || (w.is_punct(',') && angle <= 0)
                {
                    break;
                }
                if SET_TYPES.iter().any(|s| w.is_ident(s)) {
                    hit = true;
                    break;
                }
            }
            if hit {
                tracked.insert(t.text.clone());
            }
        }
        // `let [mut] name = <stmt containing HashMap/HashSet>`
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = code.get(j).filter(|n| n.kind == TokKind::Ident) else { continue };
            if !code.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                continue; // annotated lets are handled by the `:` rule
            }
            let mut nest = 0i32;
            let mut k = j + 2;
            while k < code.len() {
                let c = code[k];
                if c.is_punct('(') || c.is_punct('[') || c.is_punct('{') {
                    nest += 1;
                } else if c.is_punct(')') || c.is_punct(']') || c.is_punct('}') {
                    nest -= 1;
                    if nest < 0 {
                        break;
                    }
                } else if c.is_punct(';') && nest == 0 {
                    break;
                } else if SET_TYPES.iter().any(|s| c.is_ident(s)) {
                    tracked.insert(name.text.clone());
                    break;
                }
                k += 1;
            }
        }
    }
    tracked
}

pub fn check_source(sf: &SourceFile, out: &mut Vec<Finding>) {
    let mask = cfg_test_mask(&sf.toks);
    let code: Vec<&Tok> = sf
        .toks
        .iter()
        .zip(mask.iter())
        .filter(|(t, &m)| !t.is_comment() && !m)
        .map(|(t, _)| t)
        .collect();
    let tracked = tracked_names(&code);

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        // Clock reads: `SystemTime::now` / `Instant::now`.
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            sf.push(
                out,
                Check::Determinism,
                t.line,
                format!(
                    "`{}::now()` on a result-affecting path breaks byte-reproducibility; \
                     derive values from the seed/stream or justify with `// lint: allow(determinism): <why>`",
                    t.text
                ),
            );
            i += 4;
            continue;
        }
        // `name.iter()` / `.keys()` / … on a tracked map/set.
        if t.kind == TokKind::Ident
            && tracked.contains(&t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && code.get(i + 2).is_some_and(|n| ORDER_METHODS.iter().any(|m| n.is_ident(m)))
            && code.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            let method = &code[i + 2].text;
            sf.push(
                out,
                Check::Determinism,
                code[i + 2].line,
                format!(
                    "`{}.{method}()` iterates a default-hasher map/set in nondeterministic order; \
                     sort the result or use an ordered structure (or `// lint: allow(determinism): <why>`)",
                    t.text
                ),
            );
            i += 4;
            continue;
        }
        // `for pat in <expr over a tracked name> {` — catches
        // `for (k, v) in &self.map {` which has no method call.
        if t.is_ident("for") {
            // Find `in` at nest 0, then scan the iterated expression.
            let mut j = i + 1;
            let mut nest = 0i32;
            while j < code.len() {
                let c = code[j];
                if c.is_punct('(') || c.is_punct('[') {
                    nest += 1;
                } else if c.is_punct(')') || c.is_punct(']') {
                    nest -= 1;
                } else if c.is_ident("in") && nest == 0 {
                    break;
                } else if c.is_punct('{') {
                    break; // malformed / not a for-loop we understand
                }
                j += 1;
            }
            if j < code.len() && code[j].is_ident("in") {
                let mut k = j + 1;
                let mut has_call = false;
                let mut hit: Option<&Tok> = None;
                while k < code.len() && !code[k].is_punct('{') {
                    let c = code[k];
                    if c.is_punct('(') {
                        has_call = true;
                    }
                    if c.kind == TokKind::Ident && tracked.contains(&c.text) {
                        hit = Some(c);
                    }
                    k += 1;
                }
                // Calls in the expression (`.keys()`, helper fns) are
                // either caught by the method rule or intentionally
                // exempt; flag only the direct `for x in &map` shape.
                if let (Some(h), false) = (hit, has_call) {
                    sf.push(
                        out,
                        Check::Determinism,
                        h.line,
                        format!(
                            "`for … in {}` iterates a default-hasher map/set in nondeterministic order; \
                             sort the keys first or use an ordered structure (or `// lint: allow(determinism): <why>`)",
                            h.text
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    for dir in ["crates/core/src", "crates/mech/src"] {
        for path in collect_rs_files(&root.join(dir)) {
            let src = std::fs::read_to_string(&path)?;
            let sf = SourceFile::from_source(&rel_path(root, &path), &src);
            check_source(&sf, out);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::from_source("t.rs", src);
        let mut out = Vec::new();
        check_source(&sf, &mut out);
        out
    }

    #[test]
    fn flags_keys_iteration_on_annotated_map() {
        let out = findings(
            "struct S { tf: HashMap<u64, usize> }\nfn f(s: &S) -> Vec<u64> { s.tf.keys().copied().collect() }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`tf.keys()`"));
    }

    #[test]
    fn flags_for_loop_over_field() {
        let out = findings(
            "struct S { containing: HashMap<u64, u64> }\nimpl S { fn f(&self) { for (k, v) in &self.containing { use_it(k, v); } } }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("for … in containing"));
    }

    #[test]
    fn lookup_methods_are_fine() {
        let out = findings(
            "fn f() { let mut seen = std::collections::HashSet::new(); seen.insert(1); if seen.contains(&1) {} }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn flags_untyped_let_with_hashmap_initializer() {
        let out = findings("fn f() { let mut pf = HashMap::new(); for (k, v) in pf.drain() {} }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("drain"));
    }

    #[test]
    fn flags_clock_reads() {
        let out =
            findings("fn f() { let t = std::time::Instant::now(); let s = SystemTime::now(); }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let out = findings(
            "#[cfg(test)]\nmod tests {\n  use super::*;\n  #[test]\n  fn t() { let m = HashMap::new(); for k in m.keys() {} let i = Instant::now(); }\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pragma_with_reason_suppresses() {
        let out = findings(
            "struct S { tf: HashMap<u64, usize> }\nfn f(s: &S) -> Vec<u64> {\n  // lint: allow(determinism): collected then sorted on the next line\n  let mut v: Vec<u64> = s.tf.keys().copied().collect();\n  v.sort_unstable(); v\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn vec_fields_are_not_tracked() {
        let out = findings(
            "struct S { seg_ids: Vec<u64> }\nimpl S { fn f(&self) { for id in &self.seg_ids {} } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

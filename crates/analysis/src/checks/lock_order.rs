//! Lock-order check.
//!
//! The server has three long-lived locks with a documented hierarchy
//! (README "Lock hierarchy"): the journal mutex is outermost, the queue
//! mutex may be taken while the journal is held (submit and finish
//! journal first, then publish state), the store mutex may be taken
//! while the journal is held (pin/unpin under the durability barrier) —
//! and nothing else. In particular the store mutex is never held across
//! the queue lock, and no lock is ever taken while itself held.
//!
//! This check extracts the actual lock graph from the [`crate::model`]
//! layer: every acquisition records which named guards were live, both
//! directly and one call level deep (a call made while holding a lock
//! contributes edges to every lock the callee acquires directly). It
//! then fails on:
//!
//! * any edge between two hierarchy locks that is not one of the two
//!   sanctioned edges,
//! * any self-edge (re-acquiring a lock already held — self-deadlock
//!   with `std::sync::Mutex`), and
//! * any cycle anywhere in the graph, including locks outside the
//!   documented hierarchy.
//!
//! Lock identity is name-based: guards resolve to the field they were
//! taken from (through `let (lock, cvar) = &*self.inner;`-style
//! aliases), qualified by file stem, with the server's well-known
//! fields mapped to their canonical names (`jobs.rs`'s `inner` *is* the
//! queue).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::model::{self, EventKind, FileModel, STD_SHADOWED};
use crate::{collect_rs_files, rel_path, Check, Finding, SourceFile};

/// The documented hierarchy: edges read "may acquire the right lock
/// while holding the left one".
const ALLOWED: [(&str, &str); 2] = [("journal", "queue"), ("journal", "store")];

/// Locks the hierarchy speaks about; edges between any two of these
/// must be in [`ALLOWED`].
const HIERARCHY: [&str; 3] = ["journal", "queue", "store"];

/// Maps a (file stem, resolved guard name) pair to the canonical lock
/// name used in the hierarchy and in diagnostics.
fn canonical(stem: &str, raw: &str) -> String {
    match (stem, raw) {
        ("jobs", "inner") | ("jobs", "JobQueue") => "queue".to_string(),
        ("jobs", "journal") => "journal".to_string(),
        ("store", "inner") | ("store", "DatasetStore") => "store".to_string(),
        _ => format!("{stem}.{raw}"),
    }
}

fn stem(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// One acquired-while-held edge, kept at its first occurrence.
struct Edge {
    src: usize,
    line: u32,
    /// Callee name when the edge goes through a call.
    via: Option<String>,
}

/// Runs the check over an already-loaded set of source files (the
/// fixture tests drive this directly).
pub fn check_sources(sources: &[SourceFile], out: &mut Vec<Finding>) {
    let models: Vec<FileModel> = sources.iter().map(model::build).collect();

    // Name-based function registry and per-function direct-acquire sets.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (si, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((si, fi));
        }
    }
    let direct: Vec<Vec<BTreeSet<String>>> = models
        .iter()
        .enumerate()
        .map(|(si, m)| {
            let st = stem(&sources[si].rel);
            (0..m.fns.len())
                .map(|fi| {
                    m.fn_events(fi)
                        .filter_map(|e| match &e.kind {
                            EventKind::Acquire { lock } => Some(canonical(st, lock)),
                            _ => None,
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Collect edges: held × acquired, directly and one call deep.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add = |from: String, to: String, src: usize, line: u32, via: Option<String>| {
        edges.entry((from, to)).or_insert(Edge { src, line, via });
    };
    for (si, m) in models.iter().enumerate() {
        let st = stem(&sources[si].rel);
        for e in &m.events {
            if e.held.is_empty() {
                continue;
            }
            match &e.kind {
                EventKind::Acquire { lock } => {
                    let to = canonical(st, lock);
                    for h in &e.held {
                        add(canonical(st, h), to.clone(), si, e.line, None);
                    }
                }
                EventKind::Call { callee } => {
                    if STD_SHADOWED.contains(&callee.as_str()) {
                        continue;
                    }
                    let Some(targets) = by_name.get(callee.as_str()) else { continue };
                    let mut acquired: BTreeSet<&String> = BTreeSet::new();
                    for &(ti, tfi) in targets {
                        acquired.extend(direct[ti][tfi].iter());
                    }
                    for to in acquired {
                        for h in &e.held {
                            add(canonical(st, h), to.clone(), si, e.line, Some(callee.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Violations: self-edges, forbidden hierarchy edges, cycles.
    let via_note = |via: &Option<String>| match via {
        Some(c) => format!(" (via call to `{c}`)"),
        None => String::new(),
    };
    for ((from, to), edge) in &edges {
        let sf = &sources[edge.src];
        if from == to {
            sf.push(
                out,
                Check::LockOrder,
                edge.line,
                format!(
                    "lock `{from}` acquired while already held{} — self-deadlock with std::sync::Mutex",
                    via_note(&edge.via)
                ),
            );
        } else if HIERARCHY.contains(&from.as_str())
            && HIERARCHY.contains(&to.as_str())
            && !ALLOWED.contains(&(from.as_str(), to.as_str()))
        {
            sf.push(
                out,
                Check::LockOrder,
                edge.line,
                format!(
                    "lock `{to}` acquired while `{from}` is held{}; the documented hierarchy \
                     is journal → queue and journal → store only (README \"Lock hierarchy\")",
                    via_note(&edge.via)
                ),
            );
        }
    }

    // Cycles: for each edge a → b, a path b ⇝ a closes a cycle. Each
    // distinct cycle (as a node set) is reported once, at the
    // lexicographically first closing edge.
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            adj.entry(from).or_default().push(to);
        }
        adj
    };
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for ((from, to), edge) in &edges {
        if from == to {
            continue; // already reported as a self-edge
        }
        let Some(path) = bfs_path(&adj, to, from) else { continue };
        let nodes: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
        if !reported.insert(nodes) {
            continue;
        }
        let cycle: Vec<&str> =
            std::iter::once(from.as_str()).chain(path.iter().map(|s| s.as_str())).collect();
        sources[edge.src].push(
            out,
            Check::LockOrder,
            edge.line,
            format!(
                "lock-order cycle: {} — two threads interleaving these acquisitions deadlock",
                cycle.join(" → ")
            ),
        );
    }
}

/// Shortest path `from ⇝ to` over the edge graph, inclusive of both
/// endpoints. Deterministic (BTreeMap adjacency, FIFO order).
fn bfs_path<'a>(
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    from: &'a String,
    to: &'a String,
) -> Option<Vec<&'a String>> {
    let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<&String> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let dir = root.join("crates/server/src");
    let mut sources = Vec::new();
    for path in collect_rs_files(&dir) {
        let src = std::fs::read_to_string(&path)?;
        sources.push(SourceFile::from_source(&rel_path(root, &path), &src));
    }
    check_sources(&sources, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::from_source(rel, src)).collect();
        let mut out = Vec::new();
        check_sources(&sources, &mut out);
        out.sort();
        out
    }

    #[test]
    fn sanctioned_hierarchy_is_clean() {
        let out = findings(&[
            (
                "jobs.rs",
                "impl JobQueue { fn submit(&self) {\n\
               let j = self.journal.lock().unwrap();\n\
               let (lock, cvar) = &*self.inner;\n\
               let id = { let q = lock.lock().unwrap(); q.next_id };\n\
               self.store.pin(h);\n\
               let q = lock.lock().unwrap();\n\
             } }",
            ),
            (
                "store.rs",
                "impl DatasetStore { fn pin(&self) { let s = self.inner.lock().unwrap(); } }",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inverted_edge_and_cycle_are_reported() {
        let out = findings(&[(
            "jobs.rs",
            "impl JobQueue {\n\
               fn submit(&self) {\n\
                 let (lock, cvar) = &*self.inner;\n\
                 let q = lock.lock().unwrap();\n\
                 let j = self.journal.lock().unwrap();\n\
               }\n\
               fn compact(&self) {\n\
                 let j = self.journal.lock().unwrap();\n\
                 let (lock, cvar) = &*self.inner;\n\
                 let q = lock.lock().unwrap();\n\
               }\n\
             }",
        )]);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("`journal` acquired while `queue` is held")),
            "{out:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("lock-order cycle: journal → queue → journal")
                || m.contains("lock-order cycle: queue → journal → queue")),
            "{out:?}"
        );
    }

    #[test]
    fn call_deep_edge_is_seen() {
        let out = findings(&[
            (
                "store.rs",
                "impl DatasetStore {\n\
               fn reclaim(&self) {\n\
                 let s = self.inner.lock().unwrap();\n\
                 self.queue_len();\n\
               }\n\
             }",
            ),
            (
                "jobs.rs",
                "impl JobQueue { fn queue_len(&self) -> usize {\n\
               let (lock, _c) = &*self.inner;\n\
               let q = lock.lock().unwrap();\n\
               q.len()\n\
             } }",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`queue` acquired while `store` is held"), "{out:?}");
        assert!(out[0].message.contains("via call to `queue_len`"), "{out:?}");
    }

    #[test]
    fn self_edge_is_a_deadlock() {
        let out = findings(&[(
            "store.rs",
            "impl DatasetStore { fn f(&self) {\n\
               let a = self.inner.lock().unwrap();\n\
               let b = self.inner.lock().unwrap();\n\
             } }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("self-deadlock"), "{out:?}");
    }
}

//! Protocol drift check.
//!
//! PROTOCOL.md promises to be "the complete contract". This check makes
//! that promise mechanical by extracting three inventories from the
//! source and diffing them against the document's tables:
//!
//! * **error codes** — the `WIRE_ERROR_CODES` array in `api.rs`,
//!   rendered through `ErrorCode::as_str`, must match the "Error codes"
//!   table rows *in order* (the array is the documentation order);
//! * **verbs** — the `VERBS` inventory (minus the internal `invalid`
//!   bucket) must match the backticked verb names in the `###` headings
//!   of the "Verbs" section, as a set;
//! * **metric families** — every `trajdp_*` family name recorded in
//!   `obs.rs` (outside tests) must match the `trajdp_*` table rows, as
//!   a set.
//!
//! Extraction is token-level, so renaming a variant, adding a verb, or
//! registering a new metric family fails CI until PROTOCOL.md says so.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{lex, Tok, TokKind};
use crate::{cfg_test_mask, Check, Finding};

/// `WIRE_ERROR_CODES` variants in array order, rendered to their wire
/// strings via the `ErrorCode::Variant => "literal"` arms of `as_str`.
pub fn extract_wire_error_codes(api_src: &str) -> Vec<String> {
    let toks = lex(api_src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();

    // Variant -> wire string, from `ErrorCode::X => "y"` match arms.
    let mut wire = std::collections::BTreeMap::new();
    for i in 0..code.len().saturating_sub(6) {
        if code[i].is_ident("ErrorCode")
            && code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':')
            && code[i + 3].kind == TokKind::Ident
            && code[i + 4].is_punct('=')
            && code[i + 5].is_punct('>')
            && code[i + 6].kind == TokKind::Str
        {
            wire.insert(code[i + 3].text.clone(), code[i + 6].text.clone());
        }
    }

    // Array order.
    let mut out = Vec::new();
    let Some(start) = code.iter().position(|t| t.is_ident("WIRE_ERROR_CODES")) else {
        return out;
    };
    // Skip past the declared type (`: [ErrorCode; N] =`) to the
    // initializer's own bracket.
    let mut i = start;
    while i < code.len() && !code[i].is_punct('=') {
        i += 1;
    }
    while i < code.len() && !code[i].is_punct('[') {
        i += 1;
    }
    while i < code.len() && !code[i].is_punct(']') {
        if code[i].is_ident("ErrorCode")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let variant = &code[i + 3].text;
            if let Some(s) = wire.get(variant) {
                out.push(s.clone());
            } else {
                out.push(format!("<unmapped variant {variant}>"));
            }
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// The wire verb inventory: string literals of the `VERBS` array in
/// `obs.rs`, minus the internal `invalid` accounting bucket.
pub fn extract_verbs(obs_src: &str) -> BTreeSet<String> {
    let toks = lex(obs_src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut out = BTreeSet::new();
    let Some(start) = code.iter().position(|t| t.is_ident("VERBS")) else { return out };
    let mut i = start;
    while i < code.len() && !code[i].is_punct('=') {
        i += 1;
    }
    while i < code.len() && !code[i].is_punct('[') {
        i += 1;
    }
    while i < code.len() && !code[i].is_punct(']') {
        if code[i].kind == TokKind::Str && code[i].text != "invalid" {
            out.insert(code[i].text.clone());
        }
        i += 1;
    }
    out
}

/// Every Prometheus family name in `obs.rs` production code: string
/// literals starting with `trajdp_`, truncated at the first character
/// outside `[a-z0-9_]` (so a literal that embeds labels still yields
/// its family name). Test modules are skipped — they assert on rendered
/// exposition text, including derived `_bucket`/`_count` series.
pub fn extract_metric_families(obs_src: &str) -> BTreeSet<String> {
    let toks = lex(obs_src);
    let mask = cfg_test_mask(&toks);
    let mut out = BTreeSet::new();
    for (t, masked) in toks.iter().zip(mask.iter()) {
        if *masked || t.kind != TokKind::Str || !t.text.starts_with("trajdp_") {
            continue;
        }
        let name: String = t
            .text
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        out.insert(name);
    }
    out
}

/// What PROTOCOL.md claims, with the line numbers of its rows.
pub struct ProtocolDoc {
    /// (code, line) rows of the "Error codes" table, in document order.
    pub error_rows: Vec<(String, u32)>,
    /// Backticked verb names from `###` headings of the "Verbs" section.
    pub verbs: BTreeSet<String>,
    /// `trajdp_*` first-cell rows of the metric-family table.
    pub metric_rows: BTreeSet<String>,
    /// Line of the "Error codes" heading (anchor for table-level diffs).
    pub error_heading_line: u32,
    /// Line of the "Verbs" heading.
    pub verbs_heading_line: u32,
    /// Line of the first metric row, or of the file start if none.
    pub metrics_anchor_line: u32,
}

/// Pulls every `name` out of backticks in `s`.
fn backticked(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

pub fn parse_protocol_md(md: &str) -> ProtocolDoc {
    let mut doc = ProtocolDoc {
        error_rows: Vec::new(),
        verbs: BTreeSet::new(),
        metric_rows: BTreeSet::new(),
        error_heading_line: 1,
        verbs_heading_line: 1,
        metrics_anchor_line: 1,
    };
    #[derive(PartialEq)]
    enum Section {
        Other,
        ErrorCodes,
        Verbs,
    }
    let mut section = Section::Other;
    for (idx, raw) in md.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim_end();
        if let Some(h) = line.strip_prefix("## ") {
            section = if h.trim() == "Error codes" {
                doc.error_heading_line = line_no;
                Section::ErrorCodes
            } else if h.trim() == "Verbs" {
                doc.verbs_heading_line = line_no;
                Section::Verbs
            } else {
                Section::Other
            };
            continue;
        }
        if section == Section::Verbs {
            if let Some(h) = line.strip_prefix("### ") {
                for name in backticked(h) {
                    // Single lowercase words only — `ds-<id>`-style
                    // mentions in headings are not verbs.
                    if !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '-')
                    {
                        doc.verbs.insert(name);
                    }
                }
            }
        }
        if section == Section::ErrorCodes && line.starts_with('|') {
            let cells = backticked(line);
            if let Some(first) = cells.first() {
                if !first.is_empty() && first.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                    doc.error_rows.push((first.clone(), line_no));
                }
            }
        }
        // Metric rows are recognized anywhere by their `trajdp_` prefix.
        if line.starts_with('|') {
            if let Some(first) = backticked(line).first() {
                if first.starts_with("trajdp_") {
                    if doc.metric_rows.is_empty() {
                        doc.metrics_anchor_line = line_no;
                    }
                    doc.metric_rows.insert(first.clone());
                }
            }
        }
    }
    doc
}

/// Diffs the extracted inventories against the document. `md_file` is
/// the repo-relative name used in diagnostics (the fixture tests pass a
/// copy's name here).
pub fn diff(
    md_file: &str,
    doc: &ProtocolDoc,
    codes: &[String],
    verbs: &BTreeSet<String>,
    metrics: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let push = |out: &mut Vec<Finding>, line: u32, message: String| {
        out.push(Finding { file: md_file.to_string(), line, check: Check::ProtocolDrift, message });
    };

    // Error codes: exact order.
    let doc_codes: Vec<&String> = doc.error_rows.iter().map(|(c, _)| c).collect();
    if doc_codes.len() != codes.len() || doc_codes.iter().zip(codes).any(|(a, b)| *a != b) {
        // Report the first position that disagrees, then missing/extra.
        let mut reported = false;
        for (i, want) in codes.iter().enumerate() {
            match doc.error_rows.get(i) {
                Some((have, line)) if have != want => {
                    push(
                        out,
                        *line,
                        format!(
                            "error-code table row {} is `{have}` but `WIRE_ERROR_CODES[{i}]` is `{want}` \
                             (the array order in api.rs is the documentation order)",
                            i + 1
                        ),
                    );
                    reported = true;
                    break;
                }
                None => {
                    push(
                        out,
                        doc.error_heading_line,
                        format!("error-code table is missing `{want}` (WIRE_ERROR_CODES[{i}])"),
                    );
                    reported = true;
                    break;
                }
                _ => {}
            }
        }
        if !reported && doc_codes.len() > codes.len() {
            let (extra, line) = &doc.error_rows[codes.len()];
            push(
                out,
                *line,
                format!("error-code table documents `{extra}`, which is not in WIRE_ERROR_CODES"),
            );
        }
    }

    // Verbs: set equality.
    for missing in verbs.difference(&doc.verbs) {
        push(
            out,
            doc.verbs_heading_line,
            format!("verb `{missing}` is served but has no `###` heading in the Verbs section"),
        );
    }
    for extra in doc.verbs.difference(verbs) {
        push(
            out,
            doc.verbs_heading_line,
            format!("Verbs section documents `{extra}`, which the server does not serve"),
        );
    }

    // Metric families: set equality.
    for missing in metrics.difference(&doc.metric_rows) {
        push(
            out,
            doc.metrics_anchor_line,
            format!(
                "metric family `{missing}` is exported but missing from the metric-family table"
            ),
        );
    }
    for extra in doc.metric_rows.difference(metrics) {
        push(
            out,
            doc.metrics_anchor_line,
            format!("metric-family table documents `{extra}`, which obs.rs does not export"),
        );
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let api = std::fs::read_to_string(root.join("crates/server/src/api.rs"))?;
    let obs = std::fs::read_to_string(root.join("crates/server/src/obs.rs"))?;
    let md = std::fs::read_to_string(root.join("PROTOCOL.md"))?;
    let codes = extract_wire_error_codes(&api);
    if codes.is_empty() {
        out.push(Finding {
            file: "crates/server/src/api.rs".into(),
            line: 1,
            check: Check::ProtocolDrift,
            message: "could not extract WIRE_ERROR_CODES — drift check cannot run".into(),
        });
        return Ok(());
    }
    let verbs = extract_verbs(&obs);
    let metrics = extract_metric_families(&obs);
    if verbs.is_empty() || metrics.is_empty() {
        out.push(Finding {
            file: "crates/server/src/obs.rs".into(),
            line: 1,
            check: Check::ProtocolDrift,
            message: "could not extract VERBS / metric families — drift check cannot run".into(),
        });
        return Ok(());
    }
    let doc = parse_protocol_md(&md);
    diff("PROTOCOL.md", &doc, &codes, &verbs, &metrics, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const API: &str = r#"
        pub enum ErrorCode { A, B }
        impl ErrorCode {
            pub fn as_str(&self) -> &'static str {
                match self {
                    ErrorCode::A => "a-code",
                    ErrorCode::B => "b-code",
                }
            }
        }
        pub const WIRE_ERROR_CODES: [ErrorCode; 2] = [ErrorCode::A, ErrorCode::B];
    "#;

    const OBS: &str = r#"
        pub const VERBS: [&str; 3] = ["health", "gen", "invalid"];
        fn emit() {
            let s = "trajdp_uptime_seconds";
            let t = "trajdp_requests_total{verb=\"gen\"} 3";
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { let x = "trajdp_requests_total_bucket"; }
        }
    "#;

    #[test]
    fn extracts_codes_in_array_order() {
        assert_eq!(extract_wire_error_codes(API), vec!["a-code", "b-code"]);
    }

    #[test]
    fn extracts_verbs_and_metrics() {
        let verbs = extract_verbs(OBS);
        assert_eq!(verbs.into_iter().collect::<Vec<_>>(), vec!["gen", "health"]);
        let metrics = extract_metric_families(OBS);
        assert_eq!(
            metrics.into_iter().collect::<Vec<_>>(),
            vec!["trajdp_requests_total", "trajdp_uptime_seconds"]
        );
    }

    #[test]
    fn clean_doc_has_no_findings() {
        let md = "## Error codes\n\n| code | meaning |\n|---|---|\n| `a-code` | a |\n| `b-code` | b |\n\n\
                  ## Verbs\n\n### `health`\n\n### `gen`\n\n\
                  | family | meaning |\n|---|---|\n| `trajdp_uptime_seconds` | x |\n| `trajdp_requests_total` | y |\n";
        let doc = parse_protocol_md(md);
        let mut out = Vec::new();
        diff(
            "PROTOCOL.md",
            &doc,
            &extract_wire_error_codes(API),
            &extract_verbs(OBS),
            &extract_metric_families(OBS),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn row_order_swap_is_reported_with_line() {
        let md = "## Error codes\n\n| code | meaning |\n|---|---|\n| `b-code` | b |\n| `a-code` | a |\n\n\
                  ## Verbs\n\n### `health`\n\n### `gen`\n\n\
                  | `trajdp_uptime_seconds` | x |\n| `trajdp_requests_total` | y |\n";
        let doc = parse_protocol_md(md);
        let mut out = Vec::new();
        diff(
            "PROTOCOL.md",
            &doc,
            &extract_wire_error_codes(API),
            &extract_verbs(OBS),
            &extract_metric_families(OBS),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("`b-code`"));
        assert!(out[0].message.contains("`a-code`"));
    }

    #[test]
    fn missing_metric_and_verb_reported() {
        let md = "## Error codes\n\n| `a-code` | a |\n| `b-code` | b |\n\n\
                  ## Verbs\n\n### `health`\n\n| `trajdp_uptime_seconds` | x |\n";
        let doc = parse_protocol_md(md);
        let mut out = Vec::new();
        diff(
            "PROTOCOL.md",
            &doc,
            &extract_wire_error_codes(API),
            &extract_verbs(OBS),
            &extract_metric_families(OBS),
            &mut out,
        );
        let msgs: Vec<_> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("verb `gen`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`trajdp_requests_total`")), "{msgs:?}");
    }
}

//! Panic-path check.
//!
//! A panic on a request path is a protocol violation: the reactor's
//! worker pool catches unwinds, but the client sees a connection reset
//! or a stuck job instead of a stable error code, and a poisoned lock
//! then converts every *subsequent* request into the same failure. So:
//! no `unwrap()`, `expect("…")`, `panic!`/`unreachable!`-family macro,
//! or slice/array index on any function reachable from request
//! dispatch, unless the site carries a `// PANIC: <why impossible>`
//! comment (same line or the two lines directly above) stating why the
//! panic cannot fire, or a `lint: allow` pragma.
//!
//! Roots are every function in `reactor.rs` (the connection plane runs
//! them all) plus any function named `dispatch`, `make_dispatch`, or
//! `handle` (the service entry points). Reachability is the
//! [`crate::model`] name-based call graph: a call `x.f(…)` reaches
//! every workspace function named `f` except the std-shadowed names —
//! over-approximate in the direction an auditor wants. `#[cfg(test)]`
//! code is invisible to the model and therefore exempt.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::model::{self, EventKind, FileModel, STD_SHADOWED};
use crate::{collect_rs_files, rel_path, Check, Finding, SourceFile};

/// Service entry points that root the reachability walk wherever they
/// are defined (reactor.rs functions are roots unconditionally).
const ROOT_NAMES: [&str; 3] = ["dispatch", "handle", "make_dispatch"];

/// How far above a panic site a `// PANIC:` justification may sit.
const PANIC_WINDOW_LINES: u32 = 2;

/// Is the panic site on `line` covered by a `// PANIC:` comment — same
/// line, or anywhere in a contiguous comment run that ends within the
/// window above (so a justification longer than two lines still
/// counts, mirroring the unsafe-audit `SAFETY:` rule)?
fn has_panic_comment(sf: &SourceFile, line: u32) -> bool {
    let mut code_lines = BTreeSet::new();
    let mut comment_lines = BTreeSet::new();
    let mut panic_lines = BTreeSet::new();
    for t in &sf.toks {
        if t.is_comment() {
            comment_lines.insert(t.line);
            if t.text.contains("PANIC:") {
                panic_lines.insert(t.line);
            }
        } else {
            code_lines.insert(t.line);
        }
    }
    if panic_lines.contains(&line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let pure_comment = comment_lines.contains(&l) && !code_lines.contains(&l);
        if pure_comment {
            if panic_lines.contains(&l) {
                return true;
            }
        } else if code_lines.contains(&l) || line - l >= PANIC_WINDOW_LINES {
            return false;
        }
    }
    false
}

/// Runs the check over an already-loaded set of source files (the
/// fixture tests drive this directly).
pub fn check_sources(sources: &[SourceFile], out: &mut Vec<Finding>) {
    let models: Vec<FileModel> = sources.iter().map(model::build).collect();

    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (si, m) in models.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((si, fi));
        }
    }

    let mut reachable: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for (si, m) in models.iter().enumerate() {
        let is_reactor = sources[si].rel.ends_with("reactor.rs");
        for (fi, f) in m.fns.iter().enumerate() {
            if (is_reactor || ROOT_NAMES.contains(&f.name.as_str())) && reachable.insert((si, fi)) {
                queue.push_back((si, fi));
            }
        }
    }
    while let Some((si, fi)) = queue.pop_front() {
        for e in models[si].fn_events(fi) {
            let EventKind::Call { callee } = &e.kind else { continue };
            if STD_SHADOWED.contains(&callee.as_str()) {
                continue;
            }
            for &(ti, tfi) in by_name.get(callee.as_str()).into_iter().flatten() {
                if reachable.insert((ti, tfi)) {
                    queue.push_back((ti, tfi));
                }
            }
        }
    }

    for &(si, fi) in &reachable {
        let sf = &sources[si];
        let f = &models[si].fns[fi];
        for e in models[si].fn_events(fi) {
            let EventKind::Panic { what } = &e.kind else { continue };
            if has_panic_comment(sf, e.line) {
                continue;
            }
            sf.push(
                out,
                Check::PanicPath,
                e.line,
                format!(
                    "{what} in `{}` is reachable from request dispatch; return a stable \
                     error code instead, or justify with `// PANIC: <why impossible>`",
                    f.name
                ),
            );
        }
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let dir = root.join("crates/server/src");
    let mut sources = Vec::new();
    for path in collect_rs_files(&dir) {
        let src = std::fs::read_to_string(&path)?;
        sources.push(SourceFile::from_source(&rel_path(root, &path), &src));
    }
    check_sources(&sources, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::from_source(rel, src)).collect();
        let mut out = Vec::new();
        check_sources(&sources, &mut out);
        out.sort();
        out
    }

    #[test]
    fn unwrap_reachable_from_dispatch_is_flagged() {
        let out = findings(&[
            ("service.rs", "fn dispatch(req: &Req) { submit(req); }"),
            ("jobs.rs", "fn submit(req: &Req) { let id = req.id.unwrap(); }"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`unwrap()` in `submit`"), "{out:?}");
    }

    #[test]
    fn unreachable_fn_may_panic() {
        let out = findings(&[
            ("service.rs", "fn dispatch(req: &Req) { submit(req); }"),
            ("bench.rs", "fn bench_only(req: &Req) { let id = req.id.unwrap(); }"),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_comment_excuses_the_site() {
        let out = findings(&[(
            "service.rs",
            "fn dispatch(v: &[u8]) {\n\
               // PANIC: verb_index() returns a position into this very table\n\
               let b = v[0];\n\
               let c = v[1]; // PANIC: length checked two lines up\n\
             }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_panic_comment_does_not_cover_past_code() {
        let out = findings(&[(
            "service.rs",
            "fn dispatch(v: &[u8]) {\n\
               // PANIC: only covers the next line\n\
               let a = v.first();\n\
               let b = v[0];\n\
             }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn reactor_fns_are_roots_and_cfg_test_is_exempt() {
        let out = findings(&[(
            "reactor.rs",
            "impl Reactor { fn poll_once(&self) { self.events[0].check(); } }\n\
             #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("slice/array index in `poll_once`"), "{out:?}");
    }
}

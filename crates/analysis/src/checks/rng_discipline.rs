//! RNG-discipline check.
//!
//! Byte-reproducibility at any worker count rests on one rule: every
//! random stream in the result pipeline is derived from the run's root
//! seed through `core::stream` (`stream_rng(root, phase, unit)` — one
//! independent stream per logical unit, identical regardless of which
//! thread processes the unit). An RNG constructed anywhere else in
//! `crates/core` or `crates/mech` — a direct `StdRng::seed_from_u64`,
//! `SeedableRng::from_entropy`, `thread_rng()` — either reintroduces
//! schedule-dependence or silently forks a stream, and the determinism
//! harness only catches it when two runs happen to diverge.
//!
//! So: in those crates, outside `#[cfg(test)]`, every RNG construction
//! is a finding unless it carries a `lint: allow(rng-discipline)`
//! pragma. `core::stream` itself holds the one sanctioned pragma — the
//! constructor every other site must call.

use std::path::Path;

use crate::lexer::TokKind;
use crate::{cfg_test_mask, collect_rs_files, rel_path, Check, Finding, SourceFile};

/// Concrete RNG type names whose associated constructors are flagged.
const RNG_TYPES: [&str; 14] = [
    "ChaCha12Rng",
    "ChaCha20Rng",
    "ChaCha8Rng",
    "OsRng",
    "Pcg32",
    "Pcg64",
    "Pcg64Mcg",
    "SmallRng",
    "SplitMix64",
    "StdRng",
    "ThreadRng",
    "Xoshiro128PlusPlus",
    "Xoshiro256PlusPlus",
    "Xoshiro256StarStar",
];

/// `SeedableRng` constructor names — rand-specific vocabulary, flagged
/// regardless of the receiver type so type aliases cannot hide one.
const SEED_CTORS: [&str; 5] =
    ["from_entropy", "from_os_rng", "from_rng", "from_seed", "seed_from_u64"];

const ADVICE: &str = "RNGs must come from `core::stream::stream_rng(root, phase, unit)`";

/// Runs the check over one file (the fixture tests drive this
/// directly).
pub fn check_source(sf: &SourceFile, out: &mut Vec<Finding>) {
    let mask = cfg_test_mask(&sf.toks);
    let code: Vec<_> = sf
        .toks
        .iter()
        .zip(mask.iter())
        .filter(|(t, &m)| !t.is_comment() && !m)
        .map(|(t, _)| t)
        .collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let path_called = i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':');
        let defined = i > 0 && code[i - 1].is_ident("fn");

        // Ambient RNGs: `thread_rng()` however imported, `rand::random()`.
        if t.is_ident("thread_rng") && called && !defined {
            sf.push(
                out,
                Check::RngDiscipline,
                t.line,
                format!("`thread_rng()` is schedule-dependent; {ADVICE}"),
            );
            continue;
        }
        if t.is_ident("random") && called && path_called && code[i - 3].is_ident("rand") {
            sf.push(
                out,
                Check::RngDiscipline,
                t.line,
                format!("`rand::random()` draws from the thread RNG; {ADVICE}"),
            );
            continue;
        }

        // `Type::ctor(…)` where Type is a known RNG: any constructor
        // counts, including `new`.
        if RNG_TYPES.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && code.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
            && code.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            let ctor = &code[i + 3].text;
            if SEED_CTORS.contains(&ctor.as_str()) || ctor == "new" || ctor == "default" {
                sf.push(
                    out,
                    Check::RngDiscipline,
                    t.line,
                    format!(
                        "`{}::{ctor}` constructs an RNG outside `core::stream`; {ADVICE}",
                        t.text
                    ),
                );
            }
            continue;
        }

        // `…::seed_from_u64(…)` through an alias or an unlisted type.
        if SEED_CTORS.contains(&t.text.as_str())
            && called
            && path_called
            && !RNG_TYPES.contains(&code[i - 3].text.as_str())
        {
            sf.push(
                out,
                Check::RngDiscipline,
                t.line,
                format!("`{}` seeds an RNG outside `core::stream`; {ADVICE}", t.text),
            );
        }
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    for dir in ["crates/core/src", "crates/mech/src"] {
        for path in collect_rs_files(&root.join(dir)) {
            let src = std::fs::read_to_string(&path)?;
            let sf = SourceFile::from_source(&rel_path(root, &path), &src);
            check_source(&sf, out);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::from_source("crates/core/src/t.rs", src);
        let mut out = Vec::new();
        check_source(&sf, &mut out);
        out
    }

    #[test]
    fn direct_constructions_are_flagged() {
        let out = findings(
            "fn f() {\n\
               let a = StdRng::seed_from_u64(7);\n\
               let b = Xoshiro256PlusPlus::from_seed(seed);\n\
               let c = rand::thread_rng();\n\
               let d: f64 = rand::random();\n\
               let e = MyRng::seed_from_u64(7);\n\
             }",
        );
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6], "{out:?}");
    }

    #[test]
    fn sanctioned_and_test_sites_are_clean() {
        let out = findings(
            "// lint: allow(rng-discipline): the sanctioned per-unit constructor\n\
             pub fn stream_rng(root: u64) -> StdRng { StdRng::seed_from_u64(root) }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { let r = StdRng::seed_from_u64(1); } }\n\
             fn consumer(rng: &mut StdRng) { rng.random_range(0..4); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! Reactor-blocking check.
//!
//! The PR 7 connection plane is a single epoll/poll thread: every
//! connection's readability, writability, and timeout handling shares
//! it. Anything that blocks there — durable I/O, `thread::sleep`, or a
//! contended lock — stalls *every* connection at once, which is exactly
//! the failure mode the reactor exists to prevent. The designated
//! escape hatch is the executor: `impl Executor` owns the worker pool,
//! its queue lock, and the dispatch call, so blocking is legal there
//! and only there.
//!
//! Concretely, in `reactor.rs`, outside `impl Executor`:
//!
//! * no durable-write call ([`crate::model::IO_METHODS`]),
//! * no `Mutex`/`RwLock` acquisition, and
//! * no call to `sleep`.
//!
//! The check is per-file and uses the [`crate::model`] layer only for
//! function/impl attribution and event extraction; `#[cfg(test)]` code
//! is invisible to the model and therefore exempt.

use std::path::Path;

use crate::model::{self, EventKind};
use crate::{collect_rs_files, rel_path, Check, Finding, SourceFile};

/// The impl block allowed to block: the executor dispatch plane.
const DISPATCH_PLANE: &str = "Executor";

/// Runs the check over one file treated as a reactor source (the
/// fixture tests drive this directly).
pub fn check_source(sf: &SourceFile, out: &mut Vec<Finding>) {
    let m = model::build(sf);
    for e in &m.events {
        let in_dispatch_plane =
            e.fn_idx.is_some_and(|fi| m.fns[fi].impl_type.as_deref() == Some(DISPATCH_PLANE));
        if in_dispatch_plane {
            continue;
        }
        let fn_name = e.fn_idx.map(|fi| m.fns[fi].name.as_str()).unwrap_or("<top level>");
        let blocked = match &e.kind {
            EventKind::Io { method } => format!("durable I/O `{method}()`"),
            EventKind::Acquire { lock } => format!("lock `{lock}` acquired"),
            EventKind::Call { callee } if callee == "sleep" => "`sleep` called".to_string(),
            _ => continue,
        };
        sf.push(
            out,
            Check::ReactorBlocking,
            e.line,
            format!(
                "{blocked} on the reactor thread (in `{fn_name}`); only `impl {DISPATCH_PLANE}` \
                 may block — hand the work to the executor"
            ),
        );
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let dir = root.join("crates/server/src");
    for path in collect_rs_files(&dir) {
        if path.file_name().is_none_or(|n| n != "reactor.rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let sf = SourceFile::from_source(&rel_path(root, &path), &src);
        check_source(&sf, out);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::from_source("crates/server/src/reactor.rs", src);
        let mut out = Vec::new();
        check_source(&sf, &mut out);
        out
    }

    #[test]
    fn blocking_in_the_readiness_loop_is_flagged() {
        let out = findings(
            "impl Reactor { fn run(&mut self) {\n\
               std::thread::sleep(ms);\n\
               let q = self.queue.lock().unwrap();\n\
               self.journal.sync_all().unwrap();\n\
             } }",
        );
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(msgs[0].contains("`sleep` called"), "{out:?}");
        assert!(msgs[1].contains("lock `queue` acquired"), "{out:?}");
        assert!(msgs[2].contains("durable I/O `sync_all()`"), "{out:?}");
    }

    #[test]
    fn executor_impl_is_the_sanctioned_plane() {
        let out = findings(
            "impl Executor { fn worker(&self) {\n\
               let task = rx.lock().unwrap().recv();\n\
               self.journal.sync_all().unwrap();\n\
             } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

//! Unsafe audit.
//!
//! Two obligations:
//!
//! 1. Every `unsafe` keyword (block, fn, impl, trait) must have a
//!    comment containing `SAFETY:` on the same line, within the three
//!    preceding lines, or anywhere in a contiguous comment run that
//!    ends within those lines — close enough that the justification is
//!    read together with the site it justifies, while still allowing a
//!    safety argument longer than three lines.
//! 2. Crates that contain no `unsafe` at all must say so in their crate
//!    roots with `#![forbid(unsafe_code)]`, so unsafe cannot creep in
//!    without tripping this check. The one crate that does use unsafe
//!    (`trajdp-server`, for the reactor's extern-C syscalls) must carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]` instead.

use std::path::Path;

use crate::lexer::TokKind;
use crate::{collect_rs_files, rel_path, Check, Finding, SourceFile};

/// How far above the `unsafe` keyword a `SAFETY:` comment may sit.
const SAFETY_WINDOW_LINES: u32 = 3;

/// Checks one file's `unsafe` sites for adjacent `SAFETY:` comments.
/// Returns whether the file contains any `unsafe` at all (used for the
/// per-crate attribute obligation).
pub fn check_source(sf: &SourceFile, out: &mut Vec<Finding>) -> bool {
    let toks = &sf.toks;
    // Per-line shape, for walking comment runs: which lines hold code,
    // and which hold a comment mentioning SAFETY:.
    let mut code_lines = std::collections::HashSet::new();
    let mut safety_lines = std::collections::HashSet::new();
    let mut comment_lines = std::collections::HashSet::new();
    for t in toks.iter() {
        if t.is_comment() {
            comment_lines.insert(t.line);
            if t.text.contains("SAFETY:") {
                safety_lines.insert(t.line);
            }
        } else {
            code_lines.insert(t.line);
        }
    }
    let mut has_unsafe = false;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        has_unsafe = true;
        let site = toks[i + 1..]
            .iter()
            .find(|n| !n.is_comment())
            .map(|n| match n.kind {
                TokKind::Punct if n.text == "{" => "unsafe block",
                TokKind::Ident if n.text == "fn" => "unsafe fn",
                TokKind::Ident if n.text == "impl" => "unsafe impl",
                TokKind::Ident if n.text == "trait" => "unsafe trait",
                TokKind::Ident if n.text == "extern" => "unsafe extern block",
                _ => "unsafe site",
            })
            .unwrap_or("unsafe site");
        let mut covered = safety_lines.contains(&t.line);
        if !covered {
            // Walk a contiguous run of pure-comment lines upward: blank
            // lines are tolerated only inside the window, a code line
            // ends the run, and a run may extend past the window as
            // long as it stays unbroken comment.
            let mut l = t.line;
            while l > 1 {
                l -= 1;
                let pure_comment = comment_lines.contains(&l) && !code_lines.contains(&l);
                if pure_comment {
                    if safety_lines.contains(&l) {
                        covered = true;
                        break;
                    }
                } else if code_lines.contains(&l) || t.line - l >= SAFETY_WINDOW_LINES {
                    break;
                }
            }
        }
        if !covered {
            sf.push(
                out,
                Check::UnsafeAudit,
                t.line,
                format!(
                    "{site} without an adjacent `// SAFETY:` comment (within {SAFETY_WINDOW_LINES} lines above)"
                ),
            );
        }
    }
    has_unsafe
}

/// Checks a crate root for the required inner attribute. `attr_path`
/// is e.g. `["forbid", "unsafe_code"]`.
fn has_inner_attr(sf: &SourceFile, outer: &str, inner: &str) -> bool {
    let code: Vec<_> = sf.toks.iter().filter(|t| !t.is_comment()).collect();
    code.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(outer)
            && w[4].is_punct('(')
            && w[5].is_ident(inner)
            && w[6].is_punct(')')
    })
}

/// One workspace crate: its directory and the source roots (`lib.rs`,
/// `main.rs`, `src/bin/*.rs`) that must carry the attribute.
struct CrateInfo {
    dir: std::path::PathBuf,
}

fn workspace_crates(root: &Path) -> Vec<CrateInfo> {
    let mut crates = Vec::new();
    // The umbrella package at the workspace root.
    if root.join("src").is_dir() {
        crates.push(CrateInfo { dir: root.to_path_buf() });
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            crates.push(CrateInfo { dir });
        }
    }
    crates
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    // Pass 1: SAFETY adjacency over every source file in the repo
    // (crates, umbrella src, tests, benches, examples).
    let mut files = Vec::new();
    for sub in ["src", "crates", "tests", "examples", "benches"] {
        let p = root.join(sub);
        if p.is_dir() {
            files.extend(collect_rs_files(&p));
        }
    }
    files.sort();
    files.dedup();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let sf = SourceFile::from_source(&rel_path(root, path), &src);
        check_source(&sf, out);
        sf.pragma_errors(out);
    }

    // Pass 2: per-crate attribute obligations.
    for krate in workspace_crates(root) {
        let src_dir = krate.dir.join("src");
        let crate_files = collect_rs_files(&src_dir);
        let mut crate_has_unsafe = false;
        for path in &crate_files {
            let src = std::fs::read_to_string(path)?;
            let sf = SourceFile::from_source(&rel_path(root, path), &src);
            if sf.toks.iter().any(|t| t.is_ident("unsafe")) {
                crate_has_unsafe = true;
            }
        }
        let mut roots: Vec<std::path::PathBuf> = Vec::new();
        for candidate in ["lib.rs", "main.rs"] {
            let p = src_dir.join(candidate);
            if p.is_file() {
                roots.push(p);
            }
        }
        let bin_dir = src_dir.join("bin");
        if bin_dir.is_dir() {
            let mut bins = collect_rs_files(&bin_dir);
            bins.sort();
            roots.extend(bins);
        }
        let (attr, desc) = if crate_has_unsafe {
            (
                ("deny", "unsafe_op_in_unsafe_fn"),
                "contains unsafe; crate roots must carry `#![deny(unsafe_op_in_unsafe_fn)]`",
            )
        } else {
            (
                ("forbid", "unsafe_code"),
                "is unsafe-free; crate roots must carry `#![forbid(unsafe_code)]`",
            )
        };
        for rp in roots {
            let src = std::fs::read_to_string(&rp)?;
            let sf = SourceFile::from_source(&rel_path(root, &rp), &src);
            if !has_inner_attr(&sf, attr.0, attr.1) {
                sf.push(out, Check::UnsafeAudit, 1, format!("crate {desc}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::from_source("t.rs", src);
        let mut out = Vec::new();
        check_source(&sf, &mut out);
        out
    }

    #[test]
    fn flags_uncommented_unsafe_block() {
        let out = findings("fn f() { let x = unsafe { danger() }; }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unsafe block"));
    }

    #[test]
    fn accepts_adjacent_safety_comment() {
        let out =
            findings("// SAFETY: fd is owned and open\nfn f() { let x = unsafe { danger() }; }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn safety_comment_too_far_does_not_count() {
        let out = findings("// SAFETY: stale\n\n\n\n\nfn f() { unsafe { danger() } }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn long_contiguous_safety_comment_counts() {
        let out = findings(
            "// SAFETY: the fd is owned by this struct and stays open\n\
             // for the duration of the call; the buffer is a fully\n\
             // initialized stack array and the length argument\n\
             // matches its real size, so the kernel cannot write\n\
             // past the end of live memory.\n\
             fn f() { unsafe { danger() } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn comment_run_broken_by_code_does_not_count() {
        let out = findings(
            "// SAFETY: stale justification for something else\n\
             let y = other();\n\
             // unrelated note\n\
             fn f() { unsafe { danger() } }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let out = findings("// this mentions unsafe\nfn f() { let s = \"unsafe\"; }");
        assert!(out.is_empty());
    }

    #[test]
    fn pragma_suppresses() {
        let out = findings(
            "// lint: allow(unsafe-audit): exercised by the fixture harness\nfn f() { unsafe { danger() } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

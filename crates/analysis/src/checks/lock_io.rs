//! Lock-across-I/O lint (the PR 4 invariant).
//!
//! The server's rule: service locks (store, queue) are never held
//! across durable disk writes, so reads proceed during large persists
//! and fsyncs. This check flags any `Mutex`/`RwLock` guard binding that
//! is still live when a durable-write call executes.
//!
//! *Guards* are `let` bindings whose initializer contains a no-argument
//! `.lock()`, `.try_lock()`, `.read()`, or `.write()` call (the
//! no-argument shape distinguishes lock acquisition from
//! `io::Read::read(&mut buf)` and `io::Write::write(&buf)`). A guard
//! dies at `drop(name)` or when its enclosing block closes.
//!
//! *Durable writes* are calls to `sync_all`, `sync_data`, `fsync`,
//! `persist`, and the journal's `append`/`rewrite` methods — the
//! workspace's own durable-write entry points. (`.append(true)` on
//! `OpenOptions` is recognized and skipped.)
//!
//! The journal holds its *own* dedicated mutex across appends by
//! design — that lock exists precisely to serialize disk writes and is
//! never taken by the read path. Those sites carry
//! `// lint: allow(lock-across-io): …` pragmas naming that rationale.

use std::path::Path;

use crate::{collect_rs_files, rel_path, Check, Finding, SourceFile};

const LOCK_METHODS: [&str; 4] = ["lock", "try_lock", "read", "write"];
const IO_METHODS: [&str; 6] = ["sync_all", "sync_data", "fsync", "persist", "append", "rewrite"];

struct Guard {
    name: String,
    depth: i32,
    line: u32,
}

pub fn check_source(sf: &SourceFile, out: &mut Vec<Finding>) {
    // Work on code tokens only; comments never affect liveness. Test
    // items are exempt: the invariant binds the production server (a
    // test may hold a lock to stage a scenario — e.g. the store's
    // persist gate — without racing real readers).
    let mask = crate::cfg_test_mask(&sf.toks);
    let code: Vec<&crate::lexer::Tok> = sf
        .toks
        .iter()
        .zip(mask.iter())
        .filter(|(t, &m)| !t.is_comment() && !m)
        .map(|(t, _)| t)
        .collect();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = code.get(i + 2).filter(|n| n.kind == crate::lexer::TokKind::Ident) {
                guards.retain(|g| g.name != name.text);
            }
        } else if t.is_ident("let") {
            // `let [mut] NAME = <rhs> ;` — register NAME as a guard if
            // the rhs acquires a lock. Non-trivial patterns (tuples,
            // struct destructuring) are skipped: the workspace never
            // binds guards that way.
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = code.get(j).filter(|n| n.kind == crate::lexer::TokKind::Ident)
            else {
                i += 1;
                continue;
            };
            // Only simple `NAME =` / `NAME:` bindings can hold a guard;
            // `if let Some(x) = …` and destructuring patterns are not
            // trackable and are skipped.
            if !code.get(j + 1).is_some_and(|n| n.is_punct('=') || n.is_punct(':')) {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = name_tok.line;
            // Scan the initializer up to the statement-ending `;`,
            // tracking every delimiter so `;` inside closures/blocks
            // does not end the statement early.
            let mut k = j + 1;
            let mut nest = 0i32;
            let mut brace_nest = 0i32;
            let mut saw_eq = false;
            let mut acquires = false;
            while k < code.len() {
                let c = code[k];
                if c.is_punct('(') || c.is_punct('[') || c.is_punct('{') {
                    nest += 1;
                    if c.is_punct('{') {
                        brace_nest += 1;
                    }
                } else if c.is_punct(')') || c.is_punct(']') || c.is_punct('}') {
                    nest -= 1;
                    if c.is_punct('}') {
                        brace_nest -= 1;
                    }
                    if nest < 0 {
                        break;
                    }
                } else if c.is_punct(';') && nest == 0 {
                    break;
                } else if c.is_punct('=') && nest == 0 {
                    saw_eq = true;
                } else if saw_eq
                    // A lock taken inside a brace block (`let id = {
                    // q.lock()… }`) is released inside that block; only
                    // a top-of-expression acquisition binds NAME.
                    && brace_nest == 0
                    && c.is_punct('.')
                    && code.get(k + 1).is_some_and(|m| {
                        LOCK_METHODS.iter().any(|l| m.is_ident(l))
                    })
                    && code.get(k + 2).is_some_and(|m| m.is_punct('('))
                    && code.get(k + 3).is_some_and(|m| m.is_punct(')'))
                {
                    acquires = true;
                }
                k += 1;
            }
            if acquires {
                guards.push(Guard { name, depth, line });
            }
            // Do NOT jump past the initializer: braces inside it must
            // still be counted by the main loop. The `let` registration
            // was a pure lookahead.
        } else if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| IO_METHODS.iter().any(|m| n.is_ident(m)))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let method = &code[i + 1].text;
            // `OpenOptions::append(true)` is flag configuration, not I/O.
            let is_open_options_flag =
                method == "append" && code.get(i + 3).is_some_and(|n| n.is_ident("true"));
            if !is_open_options_flag {
                for g in &guards {
                    sf.push(
                        out,
                        Check::LockAcrossIo,
                        code[i + 1].line,
                        format!(
                            "durable write `{method}()` while lock guard `{}` (bound at line {}) is live; \
                             release the lock before disk I/O or justify with `// lint: allow(lock-across-io): <why>`",
                            g.name, g.line
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

pub fn run(root: &Path, out: &mut Vec<Finding>) -> std::io::Result<()> {
    let dir = root.join("crates/server/src");
    for path in collect_rs_files(&dir) {
        let src = std::fs::read_to_string(&path)?;
        let sf = SourceFile::from_source(&rel_path(root, &path), &src);
        check_source(&sf, out);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::from_source("t.rs", src);
        let mut out = Vec::new();
        check_source(&sf, &mut out);
        out
    }

    #[test]
    fn flags_guard_live_across_sync() {
        let out = findings(
            "fn f(&self) {\n  let mut s = self.inner.lock().unwrap();\n  s.file.sync_all().unwrap();\n}",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`sync_all()`"));
        assert!(out[0].message.contains("`s`"));
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn scoped_guard_released_before_io_is_clean() {
        let out = findings(
            "fn f(&self) {\n  { let mut s = self.inner.lock().unwrap(); s.touch(); }\n  self.file.sync_all().unwrap();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn explicit_drop_kills_guard() {
        let out = findings(
            "fn f(&self) {\n  let s = self.inner.lock().unwrap();\n  drop(s);\n  self.file.sync_data().unwrap();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let out = findings(
            "fn f(&self) {\n  let n = stream.read(&mut buf).unwrap();\n  self.file.sync_all().unwrap();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn open_options_append_flag_is_not_io() {
        let out = findings(
            "fn f(&self) {\n  let g = self.m.lock().unwrap();\n  let f = OpenOptions::new().append(true).open(p);\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn rwlock_write_guard_tracked() {
        let out = findings(
            "fn f(&self) {\n  let w = self.map.write();\n  self.journal.rewrite(&w).unwrap();\n}",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`rewrite()`"));
    }

    #[test]
    fn pragma_suppresses_on_call_line() {
        let out = findings(
            "fn f(&self) {\n  let j = self.journal.lock().unwrap();\n  // lint: allow(lock-across-io): dedicated journal lock, never on the read path\n  j.file.sync_data().unwrap();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}

// Fixture: the readiness loop blocks three ways — a sleep, a lock
// acquisition, and a durable write — and all three must be flagged.

impl Reactor {
    fn run(&mut self) {
        loop {
            std::thread::sleep(self.tick);
            let mut q = self.pending.lock().unwrap();
            self.journal.sync_all().unwrap();
            q.clear();
        }
    }
}

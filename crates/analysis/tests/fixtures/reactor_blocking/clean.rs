// Fixture: the readiness loop only moves bytes and hands work to the
// executor, whose `impl Executor` block is the sanctioned blocking
// plane — nothing may be flagged.

impl Reactor {
    fn poll_once(&mut self) {
        let n = self.poller.wait(&mut self.events);
        for ev in &self.events[..n] {
            self.executor.submit(ev.token);
        }
    }
}

impl Executor {
    fn worker(&self) {
        let task = self.rx.lock().unwrap().recv();
        self.journal.sync_all().unwrap();
    }
}

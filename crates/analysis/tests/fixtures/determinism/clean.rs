// Fixture: the sanctioned shapes — nothing may be flagged.

struct Analysis {
    candidate_tf: HashMap<PointKey, usize>,
    order: Vec<PointKey>,
}

impl Analysis {
    fn lookups_are_fine(&self, k: PointKey) -> bool {
        self.candidate_tf.contains_key(&k)
    }

    fn sorted_iteration_with_pragma(&self) -> Vec<PointKey> {
        // lint: allow(determinism): collected then sorted before any consumer sees the order
        let mut v: Vec<PointKey> = self.candidate_tf.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn vec_iteration(&self) -> usize {
        let mut n = 0;
        for _k in &self.order {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_iterate_freely() {
        let m = HashMap::new();
        for k in m.keys() {
            let _ = k;
        }
        let _t = Instant::now();
    }
}

// Fixture: nondeterminism on result-affecting paths — all four sites
// must be flagged.

struct Analysis {
    candidate_tf: HashMap<PointKey, usize>,
}

impl Analysis {
    fn candidate_points(&self) -> Vec<PointKey> {
        self.candidate_tf.keys().copied().collect()
    }

    fn walk(&self) {
        for (k, v) in &self.candidate_tf {
            emit(k, v);
        }
    }
}

fn drains_untyped_map() {
    let mut pf = HashMap::new();
    pf.insert(1, 2);
    for (k, v) in pf.drain() {
        emit(k, v);
    }
}

fn stamps_results() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

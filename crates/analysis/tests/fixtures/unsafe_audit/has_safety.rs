// Fixture: correctly documented unsafe sites — none may be flagged.

fn fcntl_with_comment(fd: i32) -> i32 {
    // SAFETY: fd is a valid descriptor owned by this listener; F_GETFL
    // reads flags and touches no memory.
    unsafe { sys::fcntl(fd, F_GETFL, 0) }
}

// SAFETY: callers pass an initialized buffer and an fd they own; read
// writes at most buf.len() bytes.
unsafe fn raw_read(fd: i32, buf: &mut [u8]) -> isize {
    sys::read(fd, buf.as_mut_ptr(), buf.len())
}

fn mentions_in_prose() {
    // The word unsafe in a comment is not a site.
    let s = "unsafe { not_code() }";
    let _ = s;
}

fn suppressed() {
    // lint: allow(unsafe-audit): fixture exercising the pragma path
    unsafe { sys::close(3) };
}

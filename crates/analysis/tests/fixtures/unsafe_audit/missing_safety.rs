// Fixture: unsafe sites with no SAFETY comments — every one must be
// flagged. Not compiled; scanned by the fixture tests.

fn fcntl_without_comment(fd: i32) -> i32 {
    unsafe { sys::fcntl(fd, F_GETFL, 0) }
}

unsafe fn raw_read(fd: i32, buf: &mut [u8]) -> isize {
    sys::read(fd, buf.as_mut_ptr(), buf.len())
}

unsafe impl Send for Handle {}

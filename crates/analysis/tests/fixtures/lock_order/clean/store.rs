// Fixture: the pin target of clean/jobs.rs — acquiring the store while
// only the journal is held is one of the two sanctioned edges.

impl DatasetStore {
    fn pin(&self, id: u64) {
        let mut s = self.inner.lock().unwrap();
        s.pins += 1;
    }
}

// Fixture: the sanctioned hierarchy, mirroring the real submit path —
// journal outermost, the queue guard scoped to its block, the store
// pinned under the journal alone. Nothing may be flagged.

impl JobQueue {
    fn submit(&self) {
        let mut j = self.journal.lock().unwrap();
        j.record(spec);
        let (lock, cvar) = &*self.inner;
        let id = {
            let mut q = lock.lock().unwrap();
            q.push_spec(spec)
        };
        self.store.pin(id);
        let mut q = lock.lock().unwrap();
        q.publish(id);
        cvar.notify_all();
    }
}

// Fixture: `submit` takes the queue lock first and the journal inside
// it — the inverse of the documented hierarchy — while `finish` uses
// the sanctioned order, closing a queue ↔ journal cycle. `queue_len`
// is the target of the call-deep edge seeded in bad/store.rs.

impl JobQueue {
    fn submit(&self) {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().unwrap();
        let mut j = self.journal.lock().unwrap();
        j.record(&q.head);
    }

    fn finish(&self) {
        let mut j = self.journal.lock().unwrap();
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().unwrap();
        q.done += 1;
    }

    fn queue_len(&self) -> usize {
        let (lock, cvar) = &*self.inner;
        let q = lock.lock().unwrap();
        q.len()
    }
}

// Fixture: `reserve` re-enters its own mutex (self-deadlock with
// std::sync::Mutex) and `reclaim` reaches the queue lock through a
// call while the store lock is held — an edge the hierarchy forbids.

impl DatasetStore {
    fn reserve(&self) {
        let a = self.inner.lock().unwrap();
        let b = self.inner.lock().unwrap();
        a.merge(b);
    }

    fn reclaim(&self) {
        let s = self.inner.lock().unwrap();
        self.queue_len();
        s.touch();
    }
}

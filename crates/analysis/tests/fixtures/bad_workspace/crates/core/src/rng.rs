// Core crate: constructs RNGs outside `core::stream`.

pub fn thread_local_noise() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn reseed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

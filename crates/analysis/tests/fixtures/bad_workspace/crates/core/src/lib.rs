// Core crate: iterates a default-hasher map on a result path.

use std::collections::HashMap;

pub fn order(map: &HashMap<u64, u64>) -> Vec<u64> {
    map.keys().copied().collect()
}

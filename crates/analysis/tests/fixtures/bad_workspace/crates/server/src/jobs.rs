// Job queue: takes the queue lock first and the journal inside it —
// the inverse of the documented hierarchy — while `finish` uses the
// sanctioned order, closing a queue ↔ journal cycle.

impl JobQueue {
    pub fn submit(&self) {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().unwrap();
        let mut j = self.journal.lock().unwrap();
        j.record(&q.head);
    }

    pub fn finish(&self) {
        let mut j = self.journal.lock().unwrap();
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock().unwrap();
        q.done += 1;
    }
}

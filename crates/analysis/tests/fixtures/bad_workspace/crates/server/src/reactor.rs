// Reactor: blocks the readiness loop with a sleep, a lock
// acquisition, and a durable write.

impl Reactor {
    pub fn run(&mut self) {
        loop {
            std::thread::sleep(self.tick);
            let mut q = self.pending.lock().unwrap();
            self.journal.sync_all().unwrap();
            q.clear();
        }
    }
}

pub enum ErrorCode {
    BadRequest,
    Internal,
    TenantUnknown,
    QuotaExceeded,
    BudgetExhausted,
}

pub const WIRE_ERROR_CODES: [ErrorCode; 5] = [
    ErrorCode::BadRequest,
    ErrorCode::Internal,
    ErrorCode::TenantUnknown,
    ErrorCode::QuotaExceeded,
    ErrorCode::BudgetExhausted,
];

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
            ErrorCode::TenantUnknown => "tenant-unknown",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::BudgetExhausted => "budget-exhausted",
        }
    }
}

pub enum ErrorCode {
    BadRequest,
    Internal,
}

pub const WIRE_ERROR_CODES: [ErrorCode; 2] = [ErrorCode::BadRequest, ErrorCode::Internal];

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
        }
    }
}

// Service entry point: panics on the request path instead of
// returning a stable error code.

pub fn handle(req: &Request) -> Response {
    let spec = req.spec.unwrap();
    let first = req.body[0];
    Response::of(spec, first)
}

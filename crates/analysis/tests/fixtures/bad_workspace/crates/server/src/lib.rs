// Server crate: holds a lock guard across a durable write.

mod api;
mod obs;

pub fn persist_all(file: &std::fs::File, m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap();
    file.sync_all().unwrap();
    let _ = *g;
}

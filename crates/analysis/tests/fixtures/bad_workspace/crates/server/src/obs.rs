pub const VERBS: [&str; 3] = ["gen", "health", "invalid"];

pub fn write_prometheus(out: &mut String) {
    out.push_str("trajdp_uptime_seconds 1\n");
    out.push_str("trajdp_requests_total 2\n");
}

pub const VERBS: [&str; 4] = ["cancel", "gen", "health", "invalid"];

pub fn write_prometheus(out: &mut String) {
    out.push_str("trajdp_uptime_seconds 1\n");
    out.push_str("trajdp_requests_total 2\n");
    out.push_str("trajdp_jobs_shed_total 3\n");
    out.push_str("trajdp_tenant_requests_total{tenant=\"acme\"} 4\n");
    out.push_str("trajdp_tenant_rejections_total{tenant=\"acme\"} 5\n");
    out.push_str("trajdp_eps_spent{dataset=\"ds-1\"} 0.5\n");
}

// Umbrella crate root: an undocumented unsafe block, and no
// `#![deny(unsafe_op_in_unsafe_fn)]` even though the crate has unsafe.

pub fn poke() -> i32 {
    let p = &7 as *const i32;
    unsafe { *p }
}

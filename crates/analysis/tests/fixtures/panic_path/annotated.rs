// Fixture: every panic site is justified with a `// PANIC:` comment or
// sits in test-only code — nothing may be flagged.

pub fn handle(req: &Request) -> Response {
    // PANIC: the framer rejects empty bodies before dispatch runs.
    let first = req.body[0];
    let spec = req.spec.clone().unwrap_or_default();
    respond(spec, first)
}

fn respond(spec: Spec, first: u8) -> Response {
    Response::of(spec, first)
}

fn dispatch(frame: &[u8]) -> u8 {
    // PANIC: `decode` only returns offsets it bounds-checked against
    // `frame.len()` — the index below re-reads the same range.
    frame[decode(frame)]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Vec<u8> = Vec::new();
        let _ = v.first().unwrap();
        let _ = v[0];
    }
}

// Fixture: panic sites reachable from request dispatch — the four
// sites in `handle` and `route` must be flagged; `bench_probe` is not
// reachable from any root and may index freely.

pub fn handle(req: &Request) -> Response {
    let spec = req.spec.unwrap();
    let first = req.body[0];
    route(spec, first)
}

fn route(spec: Spec, first: u8) -> Response {
    let table = tables().get(&spec.verb).expect("verb table");
    if first == 0 {
        unreachable!("zero byte rejected by the framer");
    }
    table.call(first)
}

fn bench_probe(req: &Request) -> u8 {
    req.body[1]
}

// Fixture: the sanctioned shapes — nothing may be flagged.

impl Store {
    fn scoped_guard(&self) {
        let text = {
            let s = self.inner.lock().expect("poisoned");
            s.render()
        };
        self.persist(&text).unwrap();
    }

    fn explicit_drop(&self) {
        let s = self.inner.lock().expect("poisoned");
        let text = s.render();
        drop(s);
        self.file.sync_all().unwrap();
    }

    fn io_read_is_not_a_guard(&self, stream: &mut TcpStream) {
        let mut buf = [0u8; 512];
        let _n = stream.read(&mut buf).unwrap();
        self.file.sync_data().unwrap();
    }

    fn open_options_append_flag(&self) {
        let g = self.m.lock().unwrap();
        let _f = OpenOptions::new().append(true).open("x").unwrap();
        drop(g);
    }

    fn journal_exception(&self) {
        let mut journal = self.journal.lock().expect("journal poisoned");
        // lint: allow(lock-across-io): dedicated disk-write lock, never taken by the read path
        journal.append(&event).unwrap();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_stage_locks() {
        let g = gate.lock().unwrap();
        file.sync_all().unwrap();
        drop(g);
    }
}

// Fixture: guards live across durable writes — both sites must be
// flagged.

impl Store {
    fn persist_holding_lock(&self) {
        let mut s = self.inner.lock().expect("poisoned");
        s.file.sync_all().unwrap();
    }

    fn rwlock_across_fsync(&self) {
        let map = self.map.write();
        self.journal.sync_data().unwrap();
        drop(map);
    }
}

// Fixture: the sanctioned shapes — the pragma'd stream constructor, a
// consumer that only draws from an RNG it was handed, and test-only
// seeding. Nothing may be flagged.

pub fn stream_rng(root: u64, phase: Phase, unit: u64) -> ChaCha8Rng {
    // lint: allow(rng-discipline): the one sanctioned per-unit constructor
    ChaCha8Rng::from_seed(derive(root, phase, unit))
}

pub fn jitter(rng: &mut impl Rng) -> f64 {
    rng.gen_range(0.0..1.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_seed_directly() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.gen::<u64>();
    }
}

// Fixture: direct RNG constructions — every site in `noise_sources`
// must be flagged.

fn noise_sources() {
    let a = StdRng::seed_from_u64(42);
    let b = SmallRng::from_entropy();
    let c = rand::thread_rng();
    let d: f64 = rand::random();
    let e = WorkerRng::from_os_rng();
}

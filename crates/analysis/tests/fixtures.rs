//! Fixture corpus for the invariant linter: positive and negative cases
//! per check, a drift test that mutates a copy of the real PROTOCOL.md
//! and asserts the exact diagnostic, and the workspace-clean regression
//! test that keeps the real tree lint-free.

use std::path::{Path, PathBuf};

use trajdp_analysis::checks::{
    determinism, drift, lock_io, lock_order, panic_path, reactor_blocking, rng_discipline,
    unsafe_audit,
};
use trajdp_analysis::{Check, Finding, SourceFile};

fn fixture(rel: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {rel}: {e}"));
    SourceFile::from_source(rel, &src)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn lines_of(findings: &[Finding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

// ---- unsafe audit ----------------------------------------------------

#[test]
fn unsafe_audit_flags_every_seeded_site() {
    let sf = fixture("unsafe_audit/missing_safety.rs");
    let mut out = Vec::new();
    unsafe_audit::check_source(&sf, &mut out);
    assert_eq!(lines_of(&out), vec![5, 8, 12], "{out:?}");
    assert!(out.iter().all(|f| f.check == Check::UnsafeAudit));
    assert!(out[0].message.contains("unsafe block"));
    assert!(out[1].message.contains("unsafe fn"));
    assert!(out[2].message.contains("unsafe impl"));
}

#[test]
fn unsafe_audit_accepts_documented_sites() {
    let sf = fixture("unsafe_audit/has_safety.rs");
    let mut out = Vec::new();
    unsafe_audit::check_source(&sf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- lock across I/O -------------------------------------------------

#[test]
fn lock_io_flags_every_seeded_site() {
    let sf = fixture("lock_io/guard_across_sync.rs");
    let mut out = Vec::new();
    lock_io::check_source(&sf, &mut out);
    assert_eq!(lines_of(&out), vec![7, 12], "{out:?}");
    assert!(out[0].message.contains("`sync_all()`") && out[0].message.contains("`s`"));
    assert!(out[1].message.contains("`sync_data()`") && out[1].message.contains("`map`"));
}

#[test]
fn lock_io_accepts_sanctioned_shapes() {
    let sf = fixture("lock_io/released_before_io.rs");
    let mut out = Vec::new();
    lock_io::check_source(&sf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- determinism -----------------------------------------------------

#[test]
fn determinism_flags_every_seeded_site() {
    let sf = fixture("determinism/violations.rs");
    let mut out = Vec::new();
    determinism::check_source(&sf, &mut out);
    assert_eq!(lines_of(&out), vec![10, 14, 23, 29], "{out:?}");
    assert!(out[0].message.contains("candidate_tf.keys()"));
    assert!(out[1].message.contains("for … in candidate_tf"));
    assert!(out[2].message.contains("pf.drain()"));
    assert!(out[3].message.contains("Instant::now()"));
}

#[test]
fn determinism_accepts_sanctioned_shapes() {
    let sf = fixture("determinism/clean.rs");
    let mut out = Vec::new();
    determinism::check_source(&sf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- lock order ------------------------------------------------------

#[test]
fn lock_order_flags_inversion_cycle_call_edge_and_self_edge() {
    let sources = [fixture("lock_order/bad/jobs.rs"), fixture("lock_order/bad/store.rs")];
    let mut out = Vec::new();
    lock_order::check_sources(&sources, &mut out);
    out.sort();
    assert!(out.iter().all(|f| f.check == Check::LockOrder));
    let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`journal` acquired while `queue` is held")), "{out:?}");
    assert!(msgs.iter().any(|m| m.contains("lock-order cycle:")), "{out:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`queue` acquired while `store` is held")
            && m.contains("via call to `queue_len`")),
        "{out:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("self-deadlock")), "{out:?}");
}

#[test]
fn lock_order_accepts_the_documented_hierarchy() {
    let sources = [fixture("lock_order/clean/jobs.rs"), fixture("lock_order/clean/store.rs")];
    let mut out = Vec::new();
    lock_order::check_sources(&sources, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- panic path ------------------------------------------------------

#[test]
fn panic_path_flags_every_reachable_site() {
    let sf = fixture("panic_path/violations.rs");
    let mut out = Vec::new();
    panic_path::check_sources(std::slice::from_ref(&sf), &mut out);
    out.sort();
    assert_eq!(lines_of(&out), vec![6, 7, 12, 14], "{out:?}");
    assert!(out[0].message.contains("`unwrap()` in `handle`"), "{out:?}");
    assert!(out[1].message.contains("slice/array index in `handle`"), "{out:?}");
    assert!(out[2].message.contains("`expect()` in `route`"), "{out:?}");
    assert!(out[3].message.contains("`unreachable!` in `route`"), "{out:?}");
}

#[test]
fn panic_path_accepts_annotated_and_test_only_sites() {
    let sf = fixture("panic_path/annotated.rs");
    let mut out = Vec::new();
    panic_path::check_sources(std::slice::from_ref(&sf), &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- reactor blocking ------------------------------------------------

#[test]
fn reactor_blocking_flags_each_blocking_class() {
    let sf = fixture("reactor_blocking/blocking.rs");
    let mut out = Vec::new();
    reactor_blocking::check_source(&sf, &mut out);
    assert_eq!(lines_of(&out), vec![7, 8, 9], "{out:?}");
    assert!(out[0].message.contains("`sleep` called"), "{out:?}");
    assert!(out[1].message.contains("lock `pending` acquired"), "{out:?}");
    assert!(out[2].message.contains("durable I/O `sync_all()`"), "{out:?}");
}

#[test]
fn reactor_blocking_accepts_the_executor_plane() {
    let sf = fixture("reactor_blocking/clean.rs");
    let mut out = Vec::new();
    reactor_blocking::check_source(&sf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- rng discipline --------------------------------------------------

#[test]
fn rng_discipline_flags_every_direct_construction() {
    let sf = fixture("rng_discipline/violations.rs");
    let mut out = Vec::new();
    rng_discipline::check_source(&sf, &mut out);
    assert_eq!(lines_of(&out), vec![5, 6, 7, 8, 9], "{out:?}");
    assert!(out[0].message.contains("`StdRng::seed_from_u64`"), "{out:?}");
    assert!(out[1].message.contains("`SmallRng::from_entropy`"), "{out:?}");
    assert!(out[2].message.contains("`thread_rng()`"), "{out:?}");
    assert!(out[3].message.contains("`rand::random()`"), "{out:?}");
    assert!(out[4].message.contains("`from_os_rng` seeds an RNG"), "{out:?}");
}

#[test]
fn rng_discipline_accepts_the_sanctioned_stream() {
    let sf = fixture("rng_discipline/clean.rs");
    let mut out = Vec::new();
    rng_discipline::check_source(&sf, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---- protocol drift --------------------------------------------------

/// Extractions from the real tree, shared by the drift tests.
fn real_inventories(
) -> (Vec<String>, std::collections::BTreeSet<String>, std::collections::BTreeSet<String>) {
    let root = workspace_root();
    let api = std::fs::read_to_string(root.join("crates/server/src/api.rs")).unwrap();
    let obs = std::fs::read_to_string(root.join("crates/server/src/obs.rs")).unwrap();
    (
        drift::extract_wire_error_codes(&api),
        drift::extract_verbs(&obs),
        drift::extract_metric_families(&obs),
    )
}

#[test]
fn drift_extracts_the_full_inventories() {
    let (codes, verbs, metrics) = real_inventories();
    assert_eq!(codes.len(), 16, "wire error codes: {codes:?}");
    assert_eq!(codes.first().map(String::as_str), Some("bad-request"));
    assert_eq!(codes.last().map(String::as_str), Some("budget-exhausted"));
    assert_eq!(verbs.len(), 15, "wire verbs: {verbs:?}");
    assert!(verbs.contains("cancel"), "{verbs:?}");
    assert!(verbs.contains("anonymize") && verbs.contains("health"));
    assert!(!verbs.contains("invalid"), "internal bucket must be excluded");
    assert!(metrics.len() >= 20, "metric families: {metrics:?}");
    assert!(metrics.contains("trajdp_requests_total"));
    assert!(
        !metrics.contains("trajdp_request_latency_seconds_bucket"),
        "derived test-asserted series must not leak into the family set"
    );
}

#[test]
fn drift_mutated_protocol_copy_yields_exact_diagnostic() {
    let (codes, verbs, metrics) = real_inventories();
    let md = std::fs::read_to_string(workspace_root().join("PROTOCOL.md")).unwrap();

    // Swap the first two error-code rows in a copy of the document.
    let first = format!("| `{}` |", codes[0]);
    let second = format!("| `{}` |", codes[1]);
    let line_of =
        |needle: &str| md.lines().position(|l| l.starts_with(needle)).expect("row present") + 1;
    let (l1, l2) = (line_of(&first), line_of(&second));
    let mutated: Vec<&str> = {
        let lines: Vec<&str> = md.lines().collect();
        let mut v = lines.clone();
        v.swap(l1 - 1, l2 - 1);
        v
    };
    let mutated = mutated.join("\n");

    let doc = drift::parse_protocol_md(&mutated);
    let mut out = Vec::new();
    drift::diff("PROTOCOL.md(copy)", &doc, &codes, &verbs, &metrics, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    let f = &out[0];
    assert_eq!(f.file, "PROTOCOL.md(copy)");
    assert_eq!(f.line as usize, l1, "diagnostic must point at the first wrong row");
    assert_eq!(
        f.message,
        format!(
            "error-code table row 1 is `{}` but `WIRE_ERROR_CODES[0]` is `{}` \
             (the array order in api.rs is the documentation order)",
            codes[1], codes[0]
        )
    );
}

#[test]
fn drift_dropped_metric_row_is_reported() {
    let (codes, verbs, metrics) = real_inventories();
    let md = std::fs::read_to_string(workspace_root().join("PROTOCOL.md")).unwrap();
    let mutated: String = md
        .lines()
        .filter(|l| !l.starts_with("| `trajdp_journal_fsync_seconds`"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(mutated.len(), md.len(), "the metric row must exist to be dropped");
    let doc = drift::parse_protocol_md(&mutated);
    let mut out = Vec::new();
    drift::diff("PROTOCOL.md(copy)", &doc, &codes, &verbs, &metrics, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(
        out[0].message.contains("`trajdp_journal_fsync_seconds` is exported but missing"),
        "{out:?}"
    );
}

/// The other direction of the CI gate: the deliberately broken mini
/// workspace under `fixtures/bad_workspace/` must trip every check.
#[test]
fn bad_workspace_trips_every_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace");
    let findings = trajdp_analysis::run_workspace(&root).unwrap();
    let hit = |c: Check| findings.iter().filter(|f| f.check == c).count();
    assert!(hit(Check::UnsafeAudit) >= 2, "{findings:?}");
    assert!(hit(Check::LockAcrossIo) >= 1, "{findings:?}");
    assert!(hit(Check::LockOrder) >= 2, "{findings:?}");
    assert!(hit(Check::PanicPath) >= 2, "{findings:?}");
    assert!(hit(Check::ReactorBlocking) >= 3, "{findings:?}");
    assert!(hit(Check::Determinism) >= 1, "{findings:?}");
    assert!(hit(Check::RngDiscipline) >= 2, "{findings:?}");
    assert!(hit(Check::ProtocolDrift) >= 1, "{findings:?}");
    for c in Check::ALL {
        assert!(hit(c) >= 1, "check `{c}` found nothing in bad_workspace:\n{findings:?}");
    }
}

// ---- the real tree ---------------------------------------------------

/// The regression test behind the PROTOCOL.md fixes and the annotation
/// sweep: the workspace itself must stay lint-clean. This is exactly
/// what CI runs via `scripts/analyze.sh`.
#[test]
fn workspace_is_lint_clean() {
    let findings = trajdp_analysis::run_workspace(&workspace_root()).unwrap();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

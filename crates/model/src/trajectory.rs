//! Trajectories: chronologically ordered sequences of timestamped samples.
//!
//! Definition 4 of the paper: `τ = {p₁, …, p_|τ|}`, one trajectory per
//! moving object covering its entire history. This module also implements
//! the two primitive edit operations the modification phase relies on —
//! point insertion into a segment and point deletion — together with their
//! utility-loss accounting (Definitions 5 and 6).

use crate::geometry::{Point, PointKey, Rect, Segment};

/// Identifier of a trajectory (and of the moving object that produced it).
pub type TrajId = u64;

/// A timestamped GPS sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Snapped spatial location.
    pub loc: Point,
    /// Seconds since the epoch of the dataset.
    pub t: i64,
}

impl Sample {
    /// Creates a sample.
    #[inline]
    pub const fn new(loc: Point, t: i64) -> Self {
        Self { loc, t }
    }
}

/// A single object's full movement history.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Identifier of the owning object.
    pub id: TrajId,
    /// Chronologically ordered samples.
    pub samples: Vec<Sample>,
}

impl Trajectory {
    /// Creates a trajectory from pre-ordered samples.
    pub fn new(id: TrajId, samples: Vec<Sample>) -> Self {
        debug_assert!(
            samples.windows(2).all(|w| w[0].t <= w[1].t),
            "samples must be chronologically ordered"
        );
        Self { id, samples }
    }

    /// Number of samples, `|τ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trajectory has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterator over the spatial locations.
    pub fn points(&self) -> impl Iterator<Item = &Point> + '_ {
        self.samples.iter().map(|s| &s.loc)
    }

    /// The consecutive-pair segment starting at sample `i`
    /// (`⟨samples[i], samples[i+1]⟩`).
    #[inline]
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.samples[i].loc, self.samples[i + 1].loc)
    }

    /// Number of consecutive-pair segments (`len − 1`, or 0).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.samples.len().saturating_sub(1)
    }

    /// Iterator over all consecutive-pair segments with their start index.
    pub fn segments(&self) -> impl Iterator<Item = (usize, Segment)> + '_ {
        self.samples.windows(2).enumerate().map(|(i, w)| (i, Segment::new(w[0].loc, w[1].loc)))
    }

    /// Axis-aligned bounding box of all samples.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::empty();
        for s in &self.samples {
            r.expand(&s.loc);
        }
        r
    }

    /// Diameter: the largest pairwise distance between samples. O(n²);
    /// used by the DE utility metric on subsampled data.
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.samples.len() {
            for j in (i + 1)..self.samples.len() {
                best = best.max(self.samples[i].loc.dist(&self.samples[j].loc));
            }
        }
        best
    }

    /// Approximate diameter via the bounding-box diagonal: an upper bound
    /// that is exact when extreme points sit on opposite corners. O(n).
    pub fn diameter_approx(&self) -> f64 {
        let b = self.bbox();
        if b.is_empty() {
            return 0.0;
        }
        let w = b.width();
        let h = b.height();
        (w * w + h * h).sqrt()
    }

    /// The trip of the trajectory: its first and last sampled locations.
    pub fn trip(&self) -> Option<(Point, Point)> {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => Some((a.loc, b.loc)),
            _ => None,
        }
    }

    /// Total path length in metres.
    pub fn path_len(&self) -> f64 {
        self.samples.windows(2).map(|w| w[0].loc.dist(&w[1].loc)).sum()
    }

    /// Number of occurrences of the exact location `q` (the point-counting
    /// query `φ(q, τ)` whose sensitivity is 1).
    pub fn count_point(&self, q: PointKey) -> usize {
        self.samples.iter().filter(|s| s.loc.key() == q).count()
    }

    /// Whether the trajectory passes through the exact location `q`.
    pub fn passes_through(&self, q: PointKey) -> bool {
        self.samples.iter().any(|s| s.loc.key() == q)
    }

    /// Inserts location `q` into segment `seg_idx` (between samples
    /// `seg_idx` and `seg_idx + 1`), the `OPᵢ` operation of Definition 5.
    ///
    /// The new sample's timestamp is interpolated from the segment's
    /// endpoints at the projection parameter of `q`, keeping the
    /// chronological order invariant. Returns the utility loss
    /// `dist(q, s)`.
    pub fn insert_into_segment(&mut self, q: Point, seg_idx: usize) -> f64 {
        assert!(seg_idx + 1 < self.samples.len(), "segment index out of range");
        let s = self.segment(seg_idx);
        let loss = s.dist_to_point(&q);
        let t0 = self.samples[seg_idx].t;
        let t1 = self.samples[seg_idx + 1].t;
        let frac = s.closest_t(&q);
        let t = t0 + ((t1 - t0) as f64 * frac).round() as i64;
        self.samples.insert(seg_idx + 1, Sample::new(q, t));
        loss
    }

    /// Appends location `q` at the end of the trajectory (used when a
    /// trajectory has fewer than two samples and no segment exists).
    /// Returns the utility loss, the distance from `q` to the previous
    /// last sample (0 for an empty trajectory).
    pub fn push_point(&mut self, q: Point) -> f64 {
        let (loss, t) = match self.samples.last() {
            Some(last) => (last.loc.dist(&q), last.t + 1),
            None => (0.0, 0),
        };
        self.samples.push(Sample::new(q, t));
        loss
    }

    /// Deletes the sample at `idx`, the `OP_d` operation of Definition 6.
    ///
    /// Returns the utility loss: the distance from the removed location to
    /// the segment reconnecting its neighbours (0 when the sample is an
    /// endpoint of the trajectory, since no reconnection error arises).
    pub fn delete_at(&mut self, idx: usize) -> f64 {
        assert!(idx < self.samples.len(), "sample index out of range");
        let loss = self.deletion_loss(idx);
        self.samples.remove(idx);
        loss
    }

    /// The utility loss [`Trajectory::delete_at`] would incur, without
    /// performing the deletion.
    pub fn deletion_loss(&self, idx: usize) -> f64 {
        if idx == 0 || idx + 1 >= self.samples.len() {
            return 0.0;
        }
        let q = self.samples[idx].loc;
        let s = Segment::new(self.samples[idx - 1].loc, self.samples[idx + 1].loc);
        s.dist_to_point(&q)
    }

    /// Removes every occurrence of location `q`, accumulating losses
    /// (the "forced disappearance" case `L[OP_d(q, τ)] = Σ_s L[OP_d(q,s)]`).
    ///
    /// Occurrences are removed one at a time so that each reconnection loss
    /// is computed against the then-current neighbours.
    pub fn delete_all(&mut self, q: PointKey) -> f64 {
        let mut total = 0.0;
        loop {
            let Some(idx) = self.samples.iter().position(|s| s.loc.key() == q) else {
                return total;
            };
            total += self.delete_at(idx);
        }
    }

    /// Indices of samples whose location equals `q`.
    pub fn occurrences(&self, q: PointKey) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.loc.key() == q).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(points: &[(f64, f64)]) -> Trajectory {
        let samples = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64 * 60))
            .collect();
        Trajectory::new(7, samples)
    }

    #[test]
    fn basic_accessors() {
        let t = traj(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.segments().count(), 2);
        assert_eq!(t.path_len(), 2.0);
        let (s, e) = t.trip().unwrap();
        assert_eq!(s, Point::new(0.0, 0.0));
        assert_eq!(e, Point::new(2.0, 0.0));
    }

    #[test]
    fn empty_trajectory() {
        let t = Trajectory::new(0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.num_segments(), 0);
        assert!(t.trip().is_none());
        assert_eq!(t.diameter(), 0.0);
        assert_eq!(t.diameter_approx(), 0.0);
    }

    #[test]
    fn diameter_exact_and_approx() {
        let t = traj(&[(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)]);
        assert_eq!(t.diameter(), 5.0);
        // bbox is [0,3]×[0,4] so the diagonal is also 5.
        assert_eq!(t.diameter_approx(), 5.0);
    }

    #[test]
    fn count_and_passes_through() {
        let t = traj(&[(0.0, 0.0), (5.0, 5.0), (0.0, 0.0)]);
        let k = Point::new(0.0, 0.0).key();
        assert_eq!(t.count_point(k), 2);
        assert!(t.passes_through(k));
        assert!(!t.passes_through(Point::new(9.0, 9.0).key()));
        assert_eq!(t.occurrences(k), vec![0, 2]);
    }

    #[test]
    fn insert_interpolates_time_and_returns_distance() {
        let mut t = traj(&[(0.0, 0.0), (10.0, 0.0)]);
        let loss = t.insert_into_segment(Point::new(5.0, 3.0), 0);
        assert_eq!(loss, 3.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.samples[1].loc, Point::new(5.0, 3.0));
        // Midpoint projection → timestamp halfway between 0 and 60.
        assert_eq!(t.samples[1].t, 30);
        assert!(t.samples.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn delete_interior_reconnection_loss() {
        let mut t = traj(&[(0.0, 0.0), (5.0, 4.0), (10.0, 0.0)]);
        assert_eq!(t.deletion_loss(1), 4.0);
        let loss = t.delete_at(1);
        assert_eq!(loss, 4.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_endpoint_is_free() {
        let mut t = traj(&[(0.0, 0.0), (5.0, 4.0), (10.0, 0.0)]);
        assert_eq!(t.delete_at(0), 0.0);
        assert_eq!(t.delete_at(t.len() - 1), 0.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_all_removes_every_occurrence() {
        let mut t = traj(&[(0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (2.0, 2.0), (0.0, 0.0)]);
        let k = Point::new(0.0, 0.0).key();
        t.delete_all(k);
        assert_eq!(t.count_point(k), 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn push_point_on_empty_and_nonempty() {
        let mut t = Trajectory::new(1, vec![]);
        assert_eq!(t.push_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(t.push_point(Point::new(4.0, 5.0)), 5.0);
        assert_eq!(t.len(), 2);
        assert!(t.samples[0].t < t.samples[1].t);
    }

    #[test]
    #[should_panic(expected = "segment index out of range")]
    fn insert_out_of_range_panics() {
        let mut t = traj(&[(0.0, 0.0), (1.0, 0.0)]);
        t.insert_into_segment(Point::new(0.5, 0.5), 1);
    }

    #[test]
    fn bbox_covers_all_points() {
        let t = traj(&[(0.0, 0.0), (5.0, -4.0), (-2.0, 3.0)]);
        let b = t.bbox();
        for p in t.points() {
            assert!(b.contains(p));
        }
    }
}

//! Planar geometry primitives.
//!
//! Distances follow the paper's definitions: the utility loss of inserting
//! a point `q` into a segment `s` is the point–segment distance
//! `dist(q, s) = min_{p̄ ∈ s} dist(q, p̄)` (Equation 3), and the pruning
//! bound of the hierarchical index uses the point–rectangle distance
//! `MINdist(q, g)` (Definition 12).

/// A point in a planar coordinate system, in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from planar coordinates in metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when comparing).
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Hashable identity of this point.
    ///
    /// Frequency counting (PF/TF) requires exact location identity. The
    /// synthetic generator snaps samples to road-network nodes, so repeated
    /// visits yield bit-identical coordinates and therefore equal keys.
    #[inline]
    pub fn key(&self) -> PointKey {
        PointKey { x: self.x.to_bits(), y: self.y.to_bits() }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

/// Bit-exact hashable identity of a [`Point`].
///
/// Two keys are equal iff the underlying coordinates are bit-identical.
/// This is the identity used throughout the workspace for point-frequency
/// (PF) and trajectory-frequency (TF) counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointKey {
    x: u64,
    y: u64,
}

impl PointKey {
    /// Reconstructs the point this key was derived from.
    #[inline]
    pub fn to_point(self) -> Point {
        Point::new(f64::from_bits(self.x), f64::from_bits(self.y))
    }
}

impl From<Point> for PointKey {
    fn from(p: Point) -> Self {
        p.key()
    }
}

/// A directed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start endpoint.
    pub a: Point,
    /// End endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its two endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length in metres.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(&self.b)
    }

    /// Whether the segment is degenerate (both endpoints coincide).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.a == self.b
    }

    /// Point–segment distance: the minimum distance from `q` to any point
    /// on this segment (Equation 3 of the paper).
    pub fn dist_to_point(&self, q: &Point) -> f64 {
        self.closest_point(q).dist(q)
    }

    /// The point on this segment closest to `q`.
    pub fn closest_point(&self, q: &Point) -> Point {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return self.a;
        }
        let t = ((q.x - self.a.x) * dx + (q.y - self.a.y) * dy) / len_sq;
        let t = t.clamp(0.0, 1.0);
        self.a.lerp(&self.b, t)
    }

    /// The interpolation parameter `t ∈ [0, 1]` of the closest point,
    /// useful for assigning a timestamp to an inserted point.
    pub fn closest_t(&self, q: &Point) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return 0.0;
        }
        (((q.x - self.a.x) * dx + (q.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0)
    }

    /// Axis-aligned bounding box of this segment.
    pub fn bbox(&self) -> Rect {
        Rect::new(
            self.a.x.min(self.b.x),
            self.a.y.min(self.b.y),
            self.a.x.max(self.b.x),
            self.a.y.max(self.b.y),
        )
    }
}

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum easting.
    pub min_x: f64,
    /// Minimum northing.
    pub min_y: f64,
    /// Maximum easting.
    pub max_x: f64,
    /// Maximum northing.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extremes. Panics in debug builds if the
    /// extremes are inverted.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted Rect extremes");
        Self { min_x, min_y, max_x, max_y }
    }

    /// The empty rectangle, an identity for [`Rect::union`].
    pub fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Whether no point has been accumulated into this rectangle.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Whether `p` lies inside (or on the border of) this rectangle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` is entirely inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle to cover `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// `MINdist(q, g)` (Definition 12): zero when `q` is inside the
    /// rectangle, otherwise the distance to the closest edge.
    pub fn min_dist(&self, q: &Point) -> f64 {
        let dx = if q.x < self.min_x {
            self.min_x - q.x
        } else if q.x > self.max_x {
            q.x - self.max_x
        } else {
            0.0
        };
        let dy = if q.y < self.min_y {
            self.min_y - q.y
        } else if q.y > self.max_y {
            q.y - self.max_y
        } else {
            0.0
        };
        (dx * dx + dy * dy).sqrt()
    }

    /// Centre of the rectangle.
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-7.25, 9.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn point_key_roundtrip_and_identity() {
        let p = Point::new(1234.5678, -9.0001);
        let k = p.key();
        assert_eq!(k.to_point(), p);
        assert_eq!(k, Point::new(1234.5678, -9.0001).key());
        assert_ne!(k, Point::new(1234.5679, -9.0001).key());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn segment_distance_perpendicular_projection() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Projects onto the interior.
        assert_eq!(s.dist_to_point(&Point::new(5.0, 3.0)), 3.0);
        // Beyond the end: distance to endpoint b.
        assert_eq!(s.dist_to_point(&Point::new(13.0, 4.0)), 5.0);
        // Before the start: distance to endpoint a.
        assert_eq!(s.dist_to_point(&Point::new(-3.0, 4.0)), 5.0);
    }

    #[test]
    fn segment_distance_degenerate() {
        let p = Point::new(2.0, 2.0);
        let s = Segment::new(p, p);
        assert!(s.is_empty());
        assert_eq!(s.dist_to_point(&Point::new(2.0, 5.0)), 3.0);
        assert_eq!(s.closest_t(&Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn segment_point_on_segment_has_zero_distance() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        assert!(s.dist_to_point(&Point::new(2.0, 2.0)) < 1e-12);
    }

    #[test]
    fn closest_t_matches_closest_point() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let q = Point::new(7.0, 5.0);
        let t = s.closest_t(&q);
        assert_eq!(s.a.lerp(&s.b, t), s.closest_point(&q));
        assert!((t - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_and_min_dist() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(r.contains(&Point::new(0.0, 10.0))); // border counts
        assert!(!r.contains(&Point::new(-0.1, 5.0)));
        assert_eq!(r.min_dist(&Point::new(5.0, 5.0)), 0.0);
        assert_eq!(r.min_dist(&Point::new(13.0, 14.0)), 5.0); // corner
        assert_eq!(r.min_dist(&Point::new(5.0, -2.0)), 2.0); // edge
    }

    #[test]
    fn rect_union_and_expand() {
        let mut r = Rect::empty();
        assert!(r.is_empty());
        r.expand(&Point::new(1.0, 2.0));
        r.expand(&Point::new(-1.0, 5.0));
        assert_eq!(r, Rect::new(-1.0, 2.0, 1.0, 5.0));
        let u = r.union(&Rect::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(u, Rect::new(-1.0, 0.0, 3.0, 5.0));
        assert!(u.contains_rect(&r));
        assert!(!r.contains_rect(&u));
    }

    #[test]
    fn rect_center_and_dims() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        assert_eq!(r.center(), Point::new(5.0, 2.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 4.0);
    }

    #[test]
    fn segment_bbox_covers_endpoints() {
        let s = Segment::new(Point::new(5.0, -1.0), Point::new(2.0, 7.0));
        let b = s.bbox();
        assert!(b.contains(&s.a));
        assert!(b.contains(&s.b));
        assert_eq!(b, Rect::new(2.0, -1.0, 5.0, 7.0));
    }
}

//! # trajdp-model
//!
//! Core data model shared by every crate in the workspace: planar points,
//! timestamped samples, trajectories, datasets, geometric primitives
//! (point–segment and point–rectangle distances used by the utility-loss
//! definitions of the paper), uniform grid coordinates, compact binary
//! serialization, and dataset statistics.
//!
//! The paper (Jin et al., ICDE 2022) defines a trajectory as a
//! chronologically ordered sequence of spatial points (Definition 4), with
//! each moving object owning exactly one trajectory. Utility loss of edit
//! operations is measured with the point–segment distance of Equation (3).
//! All of those primitives live here.
//!
//! Coordinates are planar metres within a configurable [`Rect`] domain.
//! The synthetic generator snaps points to road-network nodes so repeated
//! visits to a location produce bit-identical coordinates; [`PointKey`]
//! provides the hashable identity used for frequency counting.

#![forbid(unsafe_code)]

pub mod codec;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod geo;
pub mod geometry;
pub mod grid;
pub mod stats;
pub mod trajectory;

pub use dataset::Dataset;
pub use error::ModelError;
pub use geometry::{Point, PointKey, Rect, Segment};
pub use grid::{CellId, GridLevel};
pub use trajectory::{Sample, TrajId, Trajectory};

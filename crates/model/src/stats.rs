//! Summary statistics over datasets.
//!
//! Used to verify that the synthetic generator reproduces the T-Drive
//! profile the paper reports (average trajectory length ≈ 1,813 points,
//! inter-point spacing ≈ 600 m, sampling period ≈ 3.1 min) and by the
//! experiment harness to report dataset shapes.

use crate::dataset::Dataset;

/// Aggregate shape statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub num_trajectories: usize,
    /// Total number of samples.
    pub total_points: usize,
    /// Mean samples per trajectory.
    pub avg_traj_len: f64,
    /// Mean Euclidean distance between consecutive samples, metres.
    pub avg_point_spacing: f64,
    /// Mean time between consecutive samples, seconds.
    pub avg_sampling_period: f64,
    /// Number of distinct sample locations.
    pub distinct_locations: usize,
}

impl DatasetStats {
    /// Computes statistics in a single pass over the dataset.
    pub fn compute(ds: &Dataset) -> Self {
        let num_trajectories = ds.len();
        let total_points = ds.total_points();
        let mut spacing_sum = 0.0;
        let mut spacing_n = 0usize;
        let mut period_sum = 0.0;
        for t in &ds.trajectories {
            for w in t.samples.windows(2) {
                spacing_sum += w[0].loc.dist(&w[1].loc);
                period_sum += (w[1].t - w[0].t) as f64;
                spacing_n += 1;
            }
        }
        let distinct_locations = ds.distinct_points().len();
        Self {
            num_trajectories,
            total_points,
            avg_traj_len: if num_trajectories == 0 {
                0.0
            } else {
                total_points as f64 / num_trajectories as f64
            },
            avg_point_spacing: if spacing_n == 0 { 0.0 } else { spacing_sum / spacing_n as f64 },
            avg_sampling_period: if spacing_n == 0 { 0.0 } else { period_sum / spacing_n as f64 },
            distinct_locations,
        }
    }
}

/// Builds a normalized histogram of `values` over `bins` equal-width bins
/// spanning `[lo, hi]`; out-of-range values clamp to the border bins.
/// Returns an all-zero histogram when `values` is empty.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "bins must be positive");
    assert!(hi > lo, "histogram range must be non-degenerate");
    let mut h = vec![0.0; bins];
    if values.is_empty() {
        return h;
    }
    let w = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / w).floor().max(0.0) as usize).min(bins - 1);
        h[idx] += 1.0;
    }
    let n = values.len() as f64;
    for x in &mut h {
        *x /= n;
    }
    h
}

/// Jensen–Shannon divergence between two distributions of equal length,
/// in nats; the divergence measure behind the paper's DE and TE metrics.
/// Both inputs are renormalized defensively; all-zero inputs are treated
/// as uniform.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    assert!(!p.is_empty(), "distributions must be non-empty");
    let norm = |v: &[f64]| -> Vec<f64> {
        let s: f64 = v.iter().sum();
        if s <= 0.0 {
            vec![1.0 / v.len() as f64; v.len()]
        } else {
            v.iter().map(|x| x / s).collect()
        }
    };
    let p = norm(p);
    let q = norm(q);
    let kl = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).filter(|(x, _)| **x > 0.0).map(|(x, y)| x * (x / y).ln()).sum::<f64>()
    };
    let m: Vec<f64> = p.iter().zip(&q).map(|(a, b)| (a + b) / 2.0).collect();
    0.5 * kl(&p, &m) + 0.5 * kl(&q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::trajectory::{Sample, Trajectory};

    fn ds() -> Dataset {
        Dataset::from_trajectories(vec![
            Trajectory::new(
                0,
                vec![
                    Sample::new(Point::new(0.0, 0.0), 0),
                    Sample::new(Point::new(3.0, 4.0), 60),
                    Sample::new(Point::new(3.0, 8.0), 120),
                ],
            ),
            Trajectory::new(1, vec![Sample::new(Point::new(0.0, 0.0), 0)]),
        ])
    }

    #[test]
    fn stats_basic() {
        let s = DatasetStats::compute(&ds());
        assert_eq!(s.num_trajectories, 2);
        assert_eq!(s.total_points, 4);
        assert_eq!(s.avg_traj_len, 2.0);
        assert_eq!(s.avg_point_spacing, (5.0 + 4.0) / 2.0);
        assert_eq!(s.avg_sampling_period, 60.0);
        assert_eq!(s.distinct_locations, 3);
    }

    #[test]
    fn stats_empty() {
        let s = DatasetStats::compute(&Dataset::from_trajectories(vec![]));
        assert_eq!(s.avg_traj_len, 0.0);
        assert_eq!(s.avg_point_spacing, 0.0);
    }

    #[test]
    fn histogram_normalizes_and_clamps() {
        let h = histogram(&[0.5, 1.5, 1.6, 99.0, -3.0], 0.0, 2.0, 2);
        assert_eq!(h.len(), 2);
        // 0.5 and -3.0 → bin 0; 1.5, 1.6, 99.0 → bin 1.
        assert!((h[0] - 0.4).abs() < 1e-12);
        assert!((h[1] - 0.6).abs() < 1e-12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = histogram(&[], 0.0, 1.0, 4);
        assert!(h.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn js_divergence_properties() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        // Identity of indiscernibles.
        assert!(jensen_shannon(&p, &p) < 1e-12);
        // Symmetry.
        assert!((jensen_shannon(&p, &q) - jensen_shannon(&q, &p)).abs() < 1e-12);
        // Bounded by ln(2).
        let disjoint_a = [1.0, 0.0];
        let disjoint_b = [0.0, 1.0];
        let d = jensen_shannon(&disjoint_a, &disjoint_b);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn js_handles_zero_vectors_as_uniform() {
        let z = [0.0, 0.0];
        let u = [0.5, 0.5];
        assert!(jensen_shannon(&z, &u) < 1e-12);
    }
}

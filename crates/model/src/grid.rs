//! Uniform grid coordinates over a rectangular domain.
//!
//! A [`GridLevel`] partitions the dataset domain into `granularity ×
//! granularity` equal cells. The hierarchical index of the paper stacks
//! several levels (1×1 up to 512×512 by default); this module provides the
//! per-level coordinate math those levels share.

use crate::geometry::{Point, Rect};

/// Identifier of a cell within a single grid level: `(level, col, row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Index of the grid level in its hierarchy (0 = coarsest).
    pub level: u8,
    /// Column, `0 ≤ col < granularity`.
    pub col: u32,
    /// Row, `0 ≤ row < granularity`.
    pub row: u32,
}

impl CellId {
    /// Creates a cell id.
    pub const fn new(level: u8, col: u32, row: u32) -> Self {
        Self { level, col, row }
    }
}

/// A uniform grid of `granularity × granularity` cells over a domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridLevel {
    /// The covered spatial domain.
    pub domain: Rect,
    /// Number of cells along each axis.
    pub granularity: u32,
    /// Which level of a hierarchy this grid is (0 = coarsest); stored so
    /// [`CellId`]s produced by this grid are globally unambiguous.
    pub level: u8,
}

impl GridLevel {
    /// Creates a grid level. `granularity` must be positive and the domain
    /// non-degenerate.
    pub fn new(domain: Rect, granularity: u32, level: u8) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        assert!(domain.width() > 0.0 && domain.height() > 0.0, "degenerate grid domain");
        Self { domain, granularity, level }
    }

    /// Cell width in metres.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.domain.width() / f64::from(self.granularity)
    }

    /// Cell height in metres.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.domain.height() / f64::from(self.granularity)
    }

    /// The cell containing `p`. Points outside the domain clamp to the
    /// nearest border cell, so every point maps to a valid cell.
    pub fn locate(&self, p: &Point) -> CellId {
        let g = f64::from(self.granularity);
        let fx = ((p.x - self.domain.min_x) / self.domain.width() * g).floor();
        let fy = ((p.y - self.domain.min_y) / self.domain.height() * g).floor();
        let col = (fx.max(0.0) as u32).min(self.granularity - 1);
        let row = (fy.max(0.0) as u32).min(self.granularity - 1);
        CellId::new(self.level, col, row)
    }

    /// Geographic coverage of a cell.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        debug_assert_eq!(cell.level, self.level);
        let w = self.cell_width();
        let h = self.cell_height();
        let min_x = self.domain.min_x + w * f64::from(cell.col);
        let min_y = self.domain.min_y + h * f64::from(cell.row);
        Rect::new(min_x, min_y, min_x + w, min_y + h)
    }

    /// Whether both `a` and `b` land in the same cell of this level.
    pub fn same_cell(&self, a: &Point, b: &Point) -> bool {
        self.locate(a) == self.locate(b)
    }

    /// Total number of cells (`granularity²`).
    pub fn num_cells(&self) -> u64 {
        u64::from(self.granularity) * u64::from(self.granularity)
    }

    /// Iterate over all cell ids of this level, row-major.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let g = self.granularity;
        let level = self.level;
        (0..g).flat_map(move |row| (0..g).map(move |col| CellId::new(level, col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(g: u32) -> GridLevel {
        GridLevel::new(Rect::new(0.0, 0.0, 100.0, 100.0), g, 3)
    }

    #[test]
    fn locate_basic() {
        let g = grid(4); // 25 m cells
        assert_eq!(g.locate(&Point::new(0.0, 0.0)), CellId::new(3, 0, 0));
        assert_eq!(g.locate(&Point::new(26.0, 0.0)), CellId::new(3, 1, 0));
        assert_eq!(g.locate(&Point::new(99.9, 99.9)), CellId::new(3, 3, 3));
    }

    #[test]
    fn locate_clamps_outside_and_border() {
        let g = grid(4);
        // Exactly on the max border clamps into the last cell.
        assert_eq!(g.locate(&Point::new(100.0, 100.0)), CellId::new(3, 3, 3));
        assert_eq!(g.locate(&Point::new(-5.0, 50.0)), CellId::new(3, 0, 2));
        assert_eq!(g.locate(&Point::new(500.0, -1.0)), CellId::new(3, 3, 0));
    }

    #[test]
    fn cell_rect_contains_its_points() {
        let g = grid(8);
        for p in [Point::new(13.0, 87.0), Point::new(0.1, 0.1), Point::new(62.5, 37.4)] {
            let c = g.locate(&p);
            assert!(g.cell_rect(c).contains(&p), "cell rect must contain the located point {p:?}");
        }
    }

    #[test]
    fn cell_rects_tile_domain() {
        let g = grid(4);
        let total_area: f64 =
            g.cells().map(|c| g.cell_rect(c)).map(|r| r.width() * r.height()).sum();
        assert!((total_area - 100.0 * 100.0).abs() < 1e-6);
        assert_eq!(g.cells().count() as u64, g.num_cells());
    }

    #[test]
    fn same_cell() {
        let g = grid(2);
        assert!(g.same_cell(&Point::new(1.0, 1.0), &Point::new(49.0, 49.0)));
        assert!(!g.same_cell(&Point::new(1.0, 1.0), &Point::new(51.0, 1.0)));
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        GridLevel::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 0);
    }
}

//! Geographic helpers for importing real GPS data.
//!
//! The library works in planar metres; real corpora (T-Drive included)
//! ship WGS-84 latitude/longitude. [`haversine_m`] measures great-circle
//! distances, and [`LocalProjection`] maps lat/lon into the local planar
//! frame the rest of the workspace expects (an equirectangular projection
//! around a reference point — accurate to well under 0.1% at city scale).

use crate::geometry::Point;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two WGS-84 coordinates, in metres.
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let d_phi = (lat2 - lat1).to_radians();
    let d_lambda = (lon2 - lon1).to_radians();
    let a = (d_phi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (d_lambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
}

/// An equirectangular projection centred on a reference coordinate,
/// mapping lat/lon to planar metres (x = east, y = north).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    /// Reference latitude, degrees.
    pub ref_lat: f64,
    /// Reference longitude, degrees.
    pub ref_lon: f64,
}

impl LocalProjection {
    /// Creates a projection centred at `(ref_lat, ref_lon)`. Panics on
    /// out-of-range coordinates.
    pub fn new(ref_lat: f64, ref_lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&ref_lat), "latitude out of range");
        assert!((-180.0..=180.0).contains(&ref_lon), "longitude out of range");
        Self { ref_lat, ref_lon }
    }

    /// Projects a WGS-84 coordinate into the local planar frame.
    pub fn project(&self, lat: f64, lon: f64) -> Point {
        let x =
            (lon - self.ref_lon).to_radians() * self.ref_lat.to_radians().cos() * EARTH_RADIUS_M;
        let y = (lat - self.ref_lat).to_radians() * EARTH_RADIUS_M;
        Point::new(x, y)
    }

    /// Inverse of [`LocalProjection::project`]: planar metres back to
    /// `(lat, lon)` degrees.
    pub fn unproject(&self, p: &Point) -> (f64, f64) {
        let lat = self.ref_lat + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon =
            self.ref_lon + (p.x / (EARTH_RADIUS_M * self.ref_lat.to_radians().cos())).to_degrees();
        (lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Beijing city centre — the T-Drive region.
    const BJ_LAT: f64 = 39.9042;
    const BJ_LON: f64 = 116.4074;

    #[test]
    fn haversine_known_distances() {
        // One degree of latitude ≈ 111.2 km everywhere.
        let d = haversine_m(0.0, 0.0, 1.0, 0.0);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
        // Same point → 0.
        assert_eq!(haversine_m(BJ_LAT, BJ_LON, BJ_LAT, BJ_LON), 0.0);
        // Symmetry.
        let a = haversine_m(BJ_LAT, BJ_LON, 40.0, 117.0);
        let b = haversine_m(40.0, 117.0, BJ_LAT, BJ_LON);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let d = haversine_m(0.0, 0.0, 0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn projection_roundtrip() {
        let proj = LocalProjection::new(BJ_LAT, BJ_LON);
        for (lat, lon) in [(39.95, 116.45), (39.80, 116.30), (40.05, 116.60)] {
            let p = proj.project(lat, lon);
            let (lat2, lon2) = proj.unproject(&p);
            assert!((lat - lat2).abs() < 1e-9, "lat roundtrip");
            assert!((lon - lon2).abs() < 1e-9, "lon roundtrip");
        }
    }

    #[test]
    fn projected_distance_matches_haversine_at_city_scale() {
        let proj = LocalProjection::new(BJ_LAT, BJ_LON);
        // ~14 km across Beijing.
        let a = proj.project(39.95, 116.35);
        let b = proj.project(39.85, 116.47);
        let planar = a.dist(&b);
        let sphere = haversine_m(39.95, 116.35, 39.85, 116.47);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn reference_maps_to_origin() {
        let proj = LocalProjection::new(BJ_LAT, BJ_LON);
        let p = proj.project(BJ_LAT, BJ_LON);
        assert!(p.x.abs() < 1e-9 && p.y.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn bad_latitude_panics() {
        LocalProjection::new(91.0, 0.0);
    }
}

//! Plain-text (CSV) interchange for trajectory datasets.
//!
//! The format is one sample per line — `traj_id,x,y,t` — with a header
//! line, matching the flat layouts used by public trajectory corpora
//! (T-Drive itself ships as per-taxi CSV files). Samples of a
//! trajectory must be contiguous and chronologically ordered; the
//! domain is recomputed from the data on load.

use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::geometry::Point;
use crate::trajectory::{Sample, TrajId, Trajectory};
use std::fmt::Write as _;

/// Header line written by [`to_csv`] and required by [`from_csv`].
pub const CSV_HEADER: &str = "traj_id,x,y,t";

/// Serializes a dataset to CSV text.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::with_capacity(16 + ds.total_points() * 32);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for t in &ds.trajectories {
        for s in &t.samples {
            // `{}` on f64 prints the shortest representation that
            // round-trips, so parsing recovers bit-identical points.
            writeln!(out, "{},{},{},{}", t.id, s.loc.x, s.loc.y, s.t)
                .expect("writing to a String cannot fail");
        }
    }
    out
}

/// Parses a dataset from CSV text produced by [`to_csv`] (or any file in
/// the same layout). Empty trajectories are not representable in CSV
/// and therefore do not round-trip.
pub fn from_csv(text: &str) -> Result<Dataset, ModelError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == CSV_HEADER => {}
        Some(h) => return Err(ModelError::Invalid { reason: format!("unexpected header: {h:?}") }),
        None => return Err(ModelError::Truncated { context: "csv header" }),
    }
    let mut trajectories: Vec<Trajectory> = Vec::new();
    let mut current: Option<(TrajId, Vec<Sample>)> = None;
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let parse_err = |what: &str| ModelError::Invalid {
            reason: format!("line {}: bad {what}: {line:?}", lineno + 2),
        };
        let id: TrajId = fields
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("traj_id"))?;
        let x: f64 =
            fields.next().and_then(|v| v.trim().parse().ok()).ok_or_else(|| parse_err("x"))?;
        let y: f64 =
            fields.next().and_then(|v| v.trim().parse().ok()).ok_or_else(|| parse_err("y"))?;
        let t: i64 =
            fields.next().and_then(|v| v.trim().parse().ok()).ok_or_else(|| parse_err("t"))?;
        if fields.next().is_some() {
            return Err(parse_err("field count"));
        }
        let sample = Sample::new(Point::new(x, y), t);
        match &mut current {
            Some((cur_id, samples)) if *cur_id == id => {
                if samples.last().is_some_and(|prev| prev.t > t) {
                    return Err(ModelError::Invalid {
                        reason: format!("trajectory {id} has unordered timestamps"),
                    });
                }
                samples.push(sample);
            }
            _ => {
                if let Some((done_id, samples)) = current.take() {
                    if trajectories.iter().any(|tr| tr.id == id) {
                        return Err(ModelError::Invalid {
                            reason: format!("trajectory {id} appears in two separate blocks"),
                        });
                    }
                    trajectories.push(Trajectory::new(done_id, samples));
                }
                current = Some((id, vec![sample]));
            }
        }
    }
    if let Some((id, samples)) = current {
        trajectories.push(Trajectory::new(id, samples));
    }
    Ok(Dataset::from_trajectories(trajectories))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn sample_dataset() -> Dataset {
        Dataset::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![
                Trajectory::new(
                    3,
                    vec![
                        Sample::new(Point::new(1.5, 2.5), 10),
                        Sample::new(Point::new(3.25, 4.75), 70),
                    ],
                ),
                Trajectory::new(12, vec![Sample::new(Point::new(-0.5, 99.0), -5)]),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_samples() {
        let ds = sample_dataset();
        let parsed = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(parsed.trajectories, ds.trajectories);
    }

    #[test]
    fn roundtrip_preserves_float_precision() {
        let ds = Dataset::from_trajectories(vec![Trajectory::new(
            0,
            vec![Sample::new(Point::new(1.0 / 3.0, std::f64::consts::PI), 0)],
        )]);
        let parsed = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(
            parsed.trajectories[0].samples[0].loc.key(),
            ds.trajectories[0].samples[0].loc.key(),
            "shortest-roundtrip float printing must preserve bits"
        );
    }

    #[test]
    fn rejects_missing_or_wrong_header() {
        assert!(matches!(from_csv(""), Err(ModelError::Truncated { .. })));
        assert!(matches!(from_csv("a,b,c\n"), Err(ModelError::Invalid { .. })));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "traj_id,x,y,t\n1,2.0,3.0\n",     // missing field
            "traj_id,x,y,t\n1,2.0,3.0,4,5\n", // extra field
            "traj_id,x,y,t\nxx,2.0,3.0,4\n",  // bad id
            "traj_id,x,y,t\n1,aa,3.0,4\n",    // bad x
            "traj_id,x,y,t\n1,2.0,3.0,zz\n",  // bad t
        ] {
            assert!(matches!(from_csv(bad), Err(ModelError::Invalid { .. })), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_unordered_timestamps() {
        let text = "traj_id,x,y,t\n1,0.0,0.0,100\n1,1.0,1.0,50\n";
        assert!(matches!(from_csv(text), Err(ModelError::Invalid { .. })));
    }

    #[test]
    fn rejects_split_trajectory_blocks() {
        let text = "traj_id,x,y,t\n1,0.0,0.0,0\n2,1.0,1.0,0\n1,2.0,2.0,5\n";
        let err = from_csv(text).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn tolerates_blank_lines_and_whitespace() {
        let text = "traj_id,x,y,t\n\n 1 , 0.0 , 0.0 , 0 \n\n1,1.0,1.0,5\n";
        let ds = from_csv(text).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.trajectories[0].len(), 2);
    }
}

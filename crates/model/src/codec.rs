//! Compact binary encoding of datasets.
//!
//! Anonymized datasets are the publication artifact of this system; the
//! codec gives them a stable on-disk format: a fixed header, the domain
//! rectangle, then length-prefixed trajectories of `(x: f64, y: f64,
//! t: i64)` samples, all little-endian.

use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::geometry::{Point, Rect};
use crate::trajectory::{Sample, Trajectory};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number identifying a serialized dataset (`"TDP1"`).
pub const MAGIC: u32 = 0x5444_5031;

/// Serializes a dataset into a compact little-endian buffer.
pub fn encode_dataset(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + ds.total_points() * 24);
    buf.put_u32_le(MAGIC);
    buf.put_f64_le(ds.domain.min_x);
    buf.put_f64_le(ds.domain.min_y);
    buf.put_f64_le(ds.domain.max_x);
    buf.put_f64_le(ds.domain.max_y);
    buf.put_u64_le(ds.trajectories.len() as u64);
    for t in &ds.trajectories {
        buf.put_u64_le(t.id);
        buf.put_u64_le(t.samples.len() as u64);
        for s in &t.samples {
            buf.put_f64_le(s.loc.x);
            buf.put_f64_le(s.loc.y);
            buf.put_i64_le(s.t);
        }
    }
    buf.freeze()
}

/// Deserializes a dataset previously produced by [`encode_dataset`].
pub fn decode_dataset(mut buf: impl Buf) -> Result<Dataset, ModelError> {
    if buf.remaining() < 4 {
        return Err(ModelError::Truncated { context: "header" });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(ModelError::BadHeader { expected: MAGIC, found: magic });
    }
    if buf.remaining() < 32 + 8 {
        return Err(ModelError::Truncated { context: "domain" });
    }
    let domain = Rect::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let n = buf.get_u64_le() as usize;
    let mut trajectories = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 16 {
            return Err(ModelError::Truncated { context: "trajectory header" });
        }
        let id = buf.get_u64_le();
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len.saturating_mul(24) {
            return Err(ModelError::Truncated { context: "samples" });
        }
        let mut samples = Vec::with_capacity(len);
        for _ in 0..len {
            let x = buf.get_f64_le();
            let y = buf.get_f64_le();
            let t = buf.get_i64_le();
            samples.push(Sample::new(Point::new(x, y), t));
        }
        if samples.windows(2).any(|w| w[0].t > w[1].t) {
            return Err(ModelError::Invalid {
                reason: format!("trajectory {id} has unordered timestamps"),
            });
        }
        trajectories.push(Trajectory::new(id, samples));
    }
    Ok(Dataset::new(domain, trajectories))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        Dataset::new(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![
                Trajectory::new(
                    3,
                    vec![
                        Sample::new(Point::new(1.5, 2.5), 10),
                        Sample::new(Point::new(3.25, 4.75), 70),
                    ],
                ),
                Trajectory::new(9, vec![]),
                Trajectory::new(12, vec![Sample::new(Point::new(-0.5, 99.0), -5)]),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample_dataset();
        let encoded = encode_dataset(&ds);
        let decoded = decode_dataset(encoded).unwrap();
        assert_eq!(decoded, ds);
    }

    #[test]
    fn roundtrip_empty_dataset() {
        let ds = Dataset::new(Rect::new(0.0, 0.0, 1.0, 1.0), vec![]);
        assert_eq!(decode_dataset(encode_dataset(&ds)).unwrap(), ds);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode_dataset(&sample_dataset()).to_vec();
        raw[0] ^= 0xFF;
        let err = decode_dataset(&raw[..]).unwrap_err();
        assert!(matches!(err, ModelError::BadHeader { .. }));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_boundary() {
        let raw = encode_dataset(&sample_dataset()).to_vec();
        for cut in [0, 3, 4, 20, 44, 52, 60, raw.len() - 1] {
            let err = decode_dataset(&raw[..cut]).unwrap_err();
            assert!(
                matches!(err, ModelError::Truncated { .. } | ModelError::BadHeader { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_unordered_timestamps() {
        // Hand-build a buffer with decreasing timestamps.
        let ds = Dataset::new(
            Rect::new(0.0, 0.0, 1.0, 1.0),
            vec![Trajectory {
                id: 1,
                samples: vec![
                    Sample::new(Point::new(0.0, 0.0), 100),
                    Sample::new(Point::new(0.5, 0.5), 50),
                ],
            }],
        );
        let err = decode_dataset(encode_dataset(&ds)).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }
}

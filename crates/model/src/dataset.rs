//! Trajectory datasets: the unit of publication.
//!
//! `D = {τ₁, …, τ_|D|}` with one trajectory per moving object. Two datasets
//! are *adjacent* when they differ in at most one trajectory — the
//! neighbouring relation under which the global mechanism's sensitivity
//! is 1.

use crate::geometry::{Point, PointKey, Rect};
use crate::trajectory::{TrajId, Trajectory};
use std::collections::HashMap;

/// A collection of trajectories over a common spatial domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The spatial domain every sample lies in; drives grid construction.
    pub domain: Rect,
    /// The trajectories, one per moving object.
    pub trajectories: Vec<Trajectory>,
}

impl Dataset {
    /// Creates a dataset with an explicit domain.
    pub fn new(domain: Rect, trajectories: Vec<Trajectory>) -> Self {
        Self { domain, trajectories }
    }

    /// Creates a dataset, deriving the domain from the data's bounding box.
    pub fn from_trajectories(trajectories: Vec<Trajectory>) -> Self {
        let mut domain = Rect::empty();
        for t in &trajectories {
            for s in &t.samples {
                domain.expand(&s.loc);
            }
        }
        if domain.is_empty() {
            domain = Rect::new(0.0, 0.0, 1.0, 1.0);
        }
        Self { domain, trajectories }
    }

    /// Number of trajectories (= moving objects), `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Total number of samples over all trajectories.
    pub fn total_points(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Borrow a trajectory by its object identifier.
    pub fn by_id(&self, id: TrajId) -> Option<&Trajectory> {
        self.trajectories.iter().find(|t| t.id == id)
    }

    /// Trajectory frequency of a location: the number of trajectories that
    /// pass through `q` at least once (the TF counting query of §III-B2,
    /// sensitivity 1 under dataset adjacency).
    pub fn trajectory_frequency(&self, q: PointKey) -> usize {
        self.trajectories.iter().filter(|t| t.passes_through(q)).count()
    }

    /// TF of every distinct location in the dataset in one pass.
    pub fn tf_table(&self) -> HashMap<PointKey, usize> {
        let mut tf: HashMap<PointKey, usize> = HashMap::new();
        let mut seen: Vec<PointKey> = Vec::new();
        for t in &self.trajectories {
            seen.clear();
            for s in &t.samples {
                let k = s.loc.key();
                if !seen.contains(&k) {
                    seen.push(k);
                }
            }
            for &k in &seen {
                *tf.entry(k).or_insert(0) += 1;
            }
        }
        tf
    }

    /// All distinct sample locations in the dataset.
    pub fn distinct_points(&self) -> Vec<Point> {
        let mut seen: HashMap<PointKey, Point> = HashMap::new();
        for t in &self.trajectories {
            for s in &t.samples {
                seen.entry(s.loc.key()).or_insert(s.loc);
            }
        }
        seen.into_values().collect()
    }

    /// Returns a copy with one trajectory removed — an adjacent dataset in
    /// the differential-privacy sense. Returns `None` when `id` is absent.
    pub fn adjacent_without(&self, id: TrajId) -> Option<Dataset> {
        let pos = self.trajectories.iter().position(|t| t.id == id)?;
        let mut trajectories = self.trajectories.clone();
        trajectories.remove(pos);
        Some(Dataset { domain: self.domain, trajectories })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Sample;

    fn traj(id: TrajId, points: &[(f64, f64)]) -> Trajectory {
        let samples = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Sample::new(Point::new(x, y), i as i64))
            .collect();
        Trajectory::new(id, samples)
    }

    fn dataset() -> Dataset {
        Dataset::from_trajectories(vec![
            traj(0, &[(0.0, 0.0), (1.0, 1.0), (0.0, 0.0)]),
            traj(1, &[(1.0, 1.0), (2.0, 2.0)]),
            traj(2, &[(3.0, 3.0)]),
        ])
    }

    #[test]
    fn derived_domain_covers_all_samples() {
        let d = dataset();
        for t in &d.trajectories {
            for s in &t.samples {
                assert!(d.domain.contains(&s.loc));
            }
        }
    }

    #[test]
    fn from_empty_gets_nonempty_domain() {
        let d = Dataset::from_trajectories(vec![]);
        assert!(d.is_empty());
        assert!(!d.domain.is_empty());
    }

    #[test]
    fn counts() {
        let d = dataset();
        assert_eq!(d.len(), 3);
        assert_eq!(d.total_points(), 6);
    }

    #[test]
    fn trajectory_frequency_counts_trajectories_not_occurrences() {
        let d = dataset();
        // (0,0) appears twice but only in trajectory 0 → TF = 1.
        assert_eq!(d.trajectory_frequency(Point::new(0.0, 0.0).key()), 1);
        // (1,1) appears in trajectories 0 and 1 → TF = 2.
        assert_eq!(d.trajectory_frequency(Point::new(1.0, 1.0).key()), 2);
        assert_eq!(d.trajectory_frequency(Point::new(9.0, 9.0).key()), 0);
    }

    #[test]
    fn tf_table_matches_pointwise_queries() {
        let d = dataset();
        let table = d.tf_table();
        for p in d.distinct_points() {
            assert_eq!(table[&p.key()], d.trajectory_frequency(p.key()), "TF mismatch at {p:?}");
        }
        assert_eq!(table.len(), d.distinct_points().len());
    }

    #[test]
    fn adjacency_removes_exactly_one() {
        let d = dataset();
        let adj = d.adjacent_without(1).unwrap();
        assert_eq!(adj.len(), d.len() - 1);
        assert!(adj.by_id(1).is_none());
        assert!(d.adjacent_without(99).is_none());
    }

    #[test]
    fn by_id_lookup() {
        let d = dataset();
        assert_eq!(d.by_id(2).unwrap().len(), 1);
        assert!(d.by_id(42).is_none());
    }
}

//! Error type for the data-model layer.

use std::fmt;

/// Errors raised by (de)serialization and dataset validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A binary buffer ended before a complete record was decoded.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A magic number or version byte did not match.
    BadHeader {
        /// Expected header value.
        expected: u32,
        /// Observed header value.
        found: u32,
    },
    /// A record failed a semantic check (e.g. unordered timestamps).
    Invalid {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Truncated { context } => {
                write!(f, "buffer truncated while decoding {context}")
            }
            ModelError::BadHeader { expected, found } => {
                write!(f, "bad header: expected {expected:#x}, found {found:#x}")
            }
            ModelError::Invalid { reason } => write!(f, "invalid record: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::Truncated { context: "sample" };
        assert!(e.to_string().contains("sample"));
        let e = ModelError::BadHeader { expected: 0xABCD, found: 1 };
        assert!(e.to_string().contains("0xabcd"));
        let e = ModelError::Invalid { reason: "unsorted".into() };
        assert!(e.to_string().contains("unsorted"));
    }
}

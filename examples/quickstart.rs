//! Quickstart: generate a synthetic taxi dataset, publish it with
//! ε-differential privacy, and inspect what changed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use traj_freq_dp::core::freq::FrequencyAnalysis;
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::model::stats::DatasetStats;
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn main() {
    // 1. A small synthetic world in the T-Drive profile: taxis on a road
    //    network, with personal anchors (signatures) and shared hotspots.
    let world = generate(&GeneratorConfig::tdrive_profile(100, 150, 42));
    let stats = DatasetStats::compute(&world.dataset);
    println!("original dataset : {stats:#?}");

    // 2. What the mechanisms will protect: the top-m signature points of
    //    each trajectory (high point frequency, low trajectory frequency).
    let analysis = FrequencyAnalysis::compute(&world.dataset, 10);
    println!(
        "candidate set P  : {} distinct signature points (d ≤ |D|·m = {})",
        analysis.dimensionality(),
        world.dataset.len() * 10
    );
    let sig = &analysis.signatures[0][0];
    println!("example signature: PF = {}, TF = {}, weight = {:.3}", sig.pf, sig.tf, sig.weight);

    // 3. Publish with ε = 1.0 (ε_G = ε_L = 0.5), the paper's default.
    let cfg = FreqDpConfig::default();
    let out = anonymize(&world.dataset, Model::Combined, &cfg).expect("valid configuration");
    println!("\nε spent          : {}", out.epsilon_spent);
    println!("edits performed  : {}", out.total_edits());
    println!("utility loss     : {:.1} m (sum of edit-operation losses)", out.utility_loss());
    println!("phase times      : global {:?}, local {:?}", out.global_time, out.local_time);

    let anon_stats = DatasetStats::compute(&out.dataset);
    println!("\nanonymized       : {anon_stats:#?}");
    println!(
        "\ncardinality drift: {:+.2}% (stage 2 keeps this small)",
        (anon_stats.total_points as f64 - stats.total_points as f64) / stats.total_points as f64
            * 100.0
    );
}

//! A complete data-publishing pipeline: generate → anonymize → serialize
//! → reload → evaluate utility. This is the workflow a data custodian
//! would run before releasing trajectories to a third party.
//!
//! ```text
//! cargo run --release --example publish_pipeline
//! ```

use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information, trip_divergence,
};
use traj_freq_dp::model::codec::{decode_dataset, encode_dataset};
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn main() {
    // 1. The private dataset.
    let world = generate(&GeneratorConfig::tdrive_profile(120, 100, 42));

    // 2. Anonymize under a fixed privacy contract: ε = 1.0 total.
    let cfg = FreqDpConfig { m: 10, eps_global: 0.5, eps_local: 0.5, ..Default::default() };
    let out = anonymize(&world.dataset, Model::Combined, &cfg).expect("valid configuration");
    assert!(out.epsilon_spent <= 1.0 + 1e-9, "privacy contract respected");

    // 3. Serialize the release artifact (what actually leaves the org).
    let bytes = encode_dataset(&out.dataset);
    println!("release artifact : {} bytes ({} trajectories)", bytes.len(), out.dataset.len());

    // 4. A consumer reloads it...
    let reloaded = decode_dataset(bytes).expect("well-formed artifact");
    assert_eq!(reloaded, out.dataset);

    // 5. ...and checks the utility they are getting.
    println!("\nutility of the release (vs the private original):");
    println!(
        "  MI  = {:.3}  (information shared with the original; lower = more private)",
        mutual_information(&world.dataset, &reloaded, 64)
    );
    println!(
        "  INF = {:.3}  (fraction of original points lost)",
        information_loss(&world.dataset, &reloaded)
    );
    println!(
        "  DE  = {:.3}  (diameter-distribution divergence)",
        diameter_divergence(&world.dataset, &reloaded, 24)
    );
    println!(
        "  TE  = {:.3}  (trip-distribution divergence)",
        trip_divergence(&world.dataset, &reloaded, 16)
    );
    println!(
        "  FFP = {:.3}  (frequent-pattern F-measure; higher = more useful)",
        frequent_pattern_f1(&world.dataset, &reloaded, 64, 2, 200)
    );
}

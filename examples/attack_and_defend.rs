//! Attack & defend: measure how well the frequency-based DP models
//! resist re-identification and recovery, against the SC baseline.
//!
//! Reproduces the paper's core story (§V-B): removing signature points
//! (SC) defeats linking but the data can be map-matched back; frequency
//! randomization (GL) resists both.
//!
//! ```text
//! cargo run --release --example attack_and_defend
//! ```

use traj_freq_dp::attacks::{HmmMapMatcher, LinkingAttack, SignatureType};
use traj_freq_dp::baselines::sc;
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::metrics::{recovery_metrics, RecoveryMetrics};
use traj_freq_dp::model::Dataset;
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn main() {
    let world = generate(&GeneratorConfig::tdrive_profile(80, 120, 42));
    let original = &world.dataset;

    let attack = LinkingAttack::new(SignatureType::Spatial);
    let matcher = HmmMapMatcher::new(&world.network);
    let assess = |name: &str, anon: &Dataset| {
        let la = attack.linking_accuracy(original, anon);
        let recovered: Vec<_> = anon.trajectories.iter().map(|t| matcher.recover(t)).collect();
        let rec: RecoveryMetrics = recovery_metrics(&original.trajectories, &recovered, 50.0);
        println!(
            "{name:<10} spatial-LA = {la:.3}   recovery F-score = {:.3}   RMF = {:.3}",
            rec.f_score, rec.rmf
        );
    };

    println!("attack results (lower LA & F-score, higher RMF = better privacy):\n");
    assess("identity", original);
    assess("SC", &sc(original, 10));
    let cfg = FreqDpConfig::default();
    for (name, model) in
        [("PureG", Model::PureGlobal), ("PureL", Model::PureLocal), ("GL", Model::Combined)]
    {
        let out = anonymize(original, model, &cfg).expect("valid configuration");
        assess(name, &out.dataset);
    }
    println!("\nExpected shape (paper Table II): identity links perfectly and recovers");
    println!("perfectly; SC blocks linking but recovers well; GL blocks both.");
}

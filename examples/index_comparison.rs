//! Index shoot-out: the same K-nearest-segment workload on every index
//! variant the paper compares (Figure 5), with work counters showing
//! why the hierarchical grid wins.
//!
//! ```text
//! cargo run --release --example index_comparison
//! ```

use std::time::Instant;
use traj_freq_dp::index::{
    HierGrid, LinearScan, SearchStats, SegmentEntry, SegmentIndex, Strategy, UniformGrid,
};
use traj_freq_dp::model::{Point, Segment};
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn main() {
    let world = generate(&GeneratorConfig::tdrive_profile(200, 150, 42));
    // Flatten every trajectory segment into one dataset-wide entry list.
    let mut entries: Vec<SegmentEntry> = Vec::new();
    let mut id = 0u64;
    for t in &world.dataset.trajectories {
        for (_, seg) in t.segments() {
            entries.push(SegmentEntry::new(id, seg));
            id += 1;
        }
    }
    println!("indexing {} segments\n", entries.len());
    let domain = world.dataset.domain;

    let queries: Vec<Point> = world
        .dataset
        .trajectories
        .iter()
        .step_by(4)
        .filter_map(|t| t.samples.get(t.len() / 2))
        .map(|s| Point::new(s.loc.x + 137.0, s.loc.y - 95.0))
        .collect();
    println!("{} KNN queries (k = 8)\n", queries.len());

    let linear = LinearScan::from_entries(entries.clone());
    let uniform = UniformGrid::from_entries(domain, 512, entries.clone());
    let hier = HierGrid::from_entries(domain, 512, entries);

    let report = |name: &str, f: &dyn Fn(&Point) -> (Vec<_>, SearchStats)| {
        let start = Instant::now();
        let mut checked = 0usize;
        let mut checksum = 0.0f64;
        for q in &queries {
            let (res, stats) = f(q);
            checked += stats.segments_checked;
            checksum += res.first().map(|n: &traj_freq_dp::index::Neighbor| n.dist).unwrap_or(0.0);
        }
        println!(
            "{name:<8} {:>9.2} ms   {:>9} segment distances   (checksum {checksum:.1})",
            start.elapsed().as_secs_f64() * 1e3,
            checked
        );
    };

    report("Linear", &|q| linear.knn_with_stats(q, 8, None));
    report("UG", &|q| uniform.knn_with_stats(q, 8, None));
    report("HGt", &|q| hier.knn_with_stats(q, 8, Strategy::TopDown, None));
    report("HGb", &|q| hier.knn_with_stats(q, 8, Strategy::BottomUp, None));
    report("HG+", &|q| hier.knn_with_stats(q, 8, Strategy::BottomUpDown, None));

    // All variants are exact — verify they agree on the nearest result.
    let q = queries[0];
    let d0 = linear.knn(&q, 1)[0].dist;
    for (name, d) in [("UG", uniform.knn(&q, 1)[0].dist), ("HG+", hier.knn(&q, 1)[0].dist)] {
        assert!((d - d0).abs() < 1e-9, "{name} disagrees with linear scan");
    }
    println!("\nall index variants returned identical nearest neighbours ✓");
    let _ = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
}

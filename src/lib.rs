//! # traj-freq-dp
//!
//! A Rust implementation of **"Frequency-based Randomization for
//! Guaranteeing Differential Privacy in Spatial Trajectories"**
//! (Jin, Hua, Ruan, Zhou — ICDE 2022), together with every substrate the
//! paper's evaluation depends on: a synthetic T-Drive-style data
//! generator, the hierarchical grid index with bottom-up-down search,
//! seven baseline anonymization models, re-identification and
//! map-matching recovery attacks, and the full metric suite.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `trajdp-model` | points, trajectories, datasets, geometry |
//! | [`synth`] | `trajdp-synth` | road network + taxi-agent generator |
//! | [`mech`] | `trajdp-mech` | Laplace mechanisms, budget accounting |
//! | [`index`] | `trajdp-index` | hierarchical grid, KNN search strategies |
//! | [`core`] | `trajdp-core` | signatures, global/local mechanisms, pipelines |
//! | [`baselines`] | `trajdp-baselines` | SC, RSC, W4M, GLOVE, KLT, DPT, AdaTrace |
//! | [`attacks`] | `trajdp-attacks` | linking attack, HMM map-matching recovery |
//! | [`metrics`] | `trajdp-metrics` | MI, INF, DE, TE, FFP, recovery metrics |
//! | [`server`] | `trajdp-server` | sharded parallel executor, JSON-lines service |
//!
//! ## Quickstart
//!
//! ```
//! use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
//! use traj_freq_dp::synth::{generate, GeneratorConfig};
//!
//! // Generate a small synthetic taxi dataset.
//! let world = generate(&GeneratorConfig {
//!     num_trajectories: 25,
//!     points_per_trajectory: 60,
//!     ..Default::default()
//! });
//!
//! // Publish it with ε = 1.0 differential privacy (ε_G = ε_L = 0.5).
//! let cfg = FreqDpConfig::default();
//! let out = anonymize(&world.dataset, Model::Combined, &cfg).unwrap();
//! assert_eq!(out.epsilon_spent, 1.0);
//! assert_eq!(out.dataset.len(), world.dataset.len());
//! ```

#![forbid(unsafe_code)]

pub use trajdp_attacks as attacks;
pub use trajdp_baselines as baselines;
pub use trajdp_core as core;
pub use trajdp_index as index;
pub use trajdp_mech as mech;
pub use trajdp_metrics as metrics;
pub use trajdp_model as model;
pub use trajdp_server as server;
pub use trajdp_synth as synth;

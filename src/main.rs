//! `trajdp` — command-line front end for the frequency-based DP
//! trajectory publisher.
//!
//! ```text
//! trajdp gen --size 200 --len 150 --seed 7 --out private.csv
//! trajdp anonymize --model gl --epsilon 1.0 --m 10 --input private.csv --out release.csv
//! trajdp evaluate --original private.csv --anonymized release.csv
//! trajdp stats --input release.csv
//! ```
//!
//! Files are the CSV interchange format of `trajdp_model::csv`
//! (`traj_id,x,y,t`). The binary exists so the library can be exercised
//! on real exported data without writing Rust.

use std::process::ExitCode;
use traj_freq_dp::core::{anonymize, FreqDpConfig, Model};
use traj_freq_dp::metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information,
    trip_divergence,
};
use traj_freq_dp::model::csv::{from_csv, to_csv};
use traj_freq_dp::model::stats::DatasetStats;
use traj_freq_dp::model::Dataset;
use traj_freq_dp::synth::{generate, GeneratorConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  trajdp gen       --size N --len L [--seed S] --out FILE.csv
  trajdp anonymize --model pureg|purel|gl [--epsilon E] [--m M] [--seed S]
                   --input FILE.csv --out FILE.csv
  trajdp evaluate  --original FILE.csv --anonymized FILE.csv
  trajdp stats     --input FILE.csv";

/// Pulls the value following `--name` out of the argument list.
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .map(|w| w[1].as_str())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match opt(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{name}: {v:?}")),
    }
}

fn required<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    opt(args, name).ok_or_else(|| format!("missing required --{name}"))
}

fn load(path: &str) -> Result<Dataset, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_csv(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn save(path: &str, ds: &Dataset) -> Result<(), String> {
    std::fs::write(path, to_csv(ds)).map_err(|e| format!("cannot write {path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).ok_or("no command given")?;
    let rest = &args[1..];
    match cmd {
        "gen" => {
            let size = opt_parse(rest, "size", 200usize)?;
            let len = opt_parse(rest, "len", 150usize)?;
            let seed = opt_parse(rest, "seed", 42u64)?;
            let out = required(rest, "out")?;
            let world = generate(&GeneratorConfig::tdrive_profile(size, len, seed));
            save(out, &world.dataset)?;
            let stats = DatasetStats::compute(&world.dataset);
            eprintln!(
                "wrote {out}: {} trajectories, {} points, {} distinct locations",
                stats.num_trajectories, stats.total_points, stats.distinct_locations
            );
            Ok(())
        }
        "anonymize" => {
            let model = match required(rest, "model")? {
                "pureg" => Model::PureGlobal,
                "purel" => Model::PureLocal,
                "gl" => Model::Combined,
                other => return Err(format!("unknown model {other:?} (pureg|purel|gl)")),
            };
            let epsilon = opt_parse(rest, "epsilon", 1.0f64)?;
            if epsilon <= 0.0 || !epsilon.is_finite() {
                return Err("--epsilon must be positive".into());
            }
            let m = opt_parse(rest, "m", 10usize)?;
            let seed = opt_parse(rest, "seed", 42u64)?;
            let input = required(rest, "input")?;
            let out = required(rest, "out")?;
            let ds = load(input)?;
            let cfg = FreqDpConfig {
                m,
                eps_global: epsilon / 2.0,
                eps_local: epsilon / 2.0,
                seed,
                ..Default::default()
            };
            let result = anonymize(&ds, model, &cfg).map_err(|e| e.to_string())?;
            save(out, &result.dataset)?;
            eprintln!(
                "wrote {out}: ε spent = {}, edits = {}, utility loss = {:.1} m",
                result.epsilon_spent,
                result.total_edits(),
                result.utility_loss()
            );
            Ok(())
        }
        "evaluate" => {
            let original = load(required(rest, "original")?)?;
            let anonymized = load(required(rest, "anonymized")?)?;
            if original.len() != anonymized.len() {
                return Err("datasets must contain the same number of trajectories".into());
            }
            println!("MI  = {:.4}", mutual_information(&original, &anonymized, 64));
            println!("INF = {:.4}", information_loss(&original, &anonymized));
            println!("DE  = {:.4}", diameter_divergence(&original, &anonymized, 24));
            println!("TE  = {:.4}", trip_divergence(&original, &anonymized, 16));
            println!("FFP = {:.4}", frequent_pattern_f1(&original, &anonymized, 64, 2, 200));
            Ok(())
        }
        "stats" => {
            let ds = load(required(rest, "input")?)?;
            let s = DatasetStats::compute(&ds);
            println!("{s:#?}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        let args = a(&["--size", "10", "--out", "x.csv"]);
        assert_eq!(opt(&args, "size"), Some("10"));
        assert_eq!(opt(&args, "missing"), None);
        assert_eq!(opt_parse(&args, "size", 5usize).unwrap(), 10);
        assert_eq!(opt_parse(&args, "other", 5usize).unwrap(), 5);
        assert!(opt_parse::<usize>(&a(&["--size", "xx"]), "size", 1).is_err());
        assert!(required(&args, "out").is_ok());
        assert!(required(&args, "nope").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&a(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_anonymize_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("trajdp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let private = dir.join("private.csv");
        let release = dir.join("release.csv");
        let p = private.to_str().unwrap();
        let r = release.to_str().unwrap();
        run(&a(&["gen", "--size", "12", "--len", "40", "--seed", "3", "--out", p])).unwrap();
        run(&a(&[
            "anonymize", "--model", "gl", "--epsilon", "1.0", "--m", "4", "--input", p,
            "--out", r,
        ]))
        .unwrap();
        run(&a(&["evaluate", "--original", p, "--anonymized", r])).unwrap();
        run(&a(&["stats", "--input", r])).unwrap();
        let released = load(r).unwrap();
        assert_eq!(released.len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn anonymize_rejects_bad_model_and_epsilon() {
        let err = run(&a(&["anonymize", "--model", "zzz", "--input", "x", "--out", "y"]))
            .unwrap_err();
        assert!(err.contains("unknown model"));
        let err = run(&a(&[
            "anonymize", "--model", "gl", "--epsilon", "-1", "--input", "x", "--out", "y",
        ]))
        .unwrap_err();
        assert!(err.contains("positive"));
    }
}

//! `trajdp` — command-line front end for the frequency-based DP
//! trajectory publisher.
//!
//! ```text
//! trajdp gen --size 200 --len 150 --seed 7 --out private.csv
//! trajdp anonymize --model gl --epsilon 1.0 --m 10 --input private.csv --out release.csv
//! trajdp anonymize --model gl --parallel 8 --input private.csv --out release.csv
//! trajdp evaluate --original private.csv --anonymized release.csv
//! trajdp stats --input release.csv
//! trajdp serve --addr 127.0.0.1:7878 --workers 4 --state-dir state/ --log-level info
//! trajdp submit --addr 127.0.0.1:7878 --file request.json --data private.csv
//! trajdp fetch --addr 127.0.0.1:7878 --dataset ds-2 --out release.csv
//! trajdp delete --addr 127.0.0.1:7878 --dataset ds-2
//! trajdp info --addr 127.0.0.1:7878
//! trajdp metrics --addr 127.0.0.1:7878
//! ```
//!
//! Files are the CSV interchange format of `trajdp_model::csv`
//! (`traj_id,x,y,t`). The binary exists so the library can be exercised
//! on real exported data without writing Rust; `serve` turns it into a
//! long-lived JSON-lines service (`trajdp_server`).
//!
//! ## Exit codes
//!
//! Failures are classified, so scripts can tell *why* a command failed
//! without parsing stderr (documented in `PROTOCOL.md`):
//!
//! | code | class |
//! |------|-------|
//! | 0 | success |
//! | 1 | local failure (file I/O, CSV parse, pipeline error) |
//! | 2 | usage error (unknown command/flag, bad value) |
//! | 3 | transport failure (cannot connect, connection lost) |
//! | 4 | the server rejected the request (a stable API error code) |

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::process::ExitCode;
use traj_freq_dp::core::{anonymize, FreqDpConfig};
use traj_freq_dp::metrics::{
    diameter_divergence, frequent_pattern_f1, information_loss, mutual_information, trip_divergence,
};
use traj_freq_dp::model::csv::{from_csv, to_csv};
use traj_freq_dp::model::stats::DatasetStats;
use traj_freq_dp::model::Dataset;
use traj_freq_dp::server::api::{ApiError, ErrorCode};
use traj_freq_dp::server::protocol::{
    budget_split, parse_model, validate_eps_split, validate_workers,
};
use traj_freq_dp::server::{
    anonymize_parallel, init_logger, Client, LogLevel, Server, ServerConfig,
};
use traj_freq_dp::synth::{generate, GeneratorConfig};

/// A classified CLI failure; each class maps to a documented exit code.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command, unknown/misspelled flag,
    /// missing or invalid value. Exit 2.
    Usage(String),
    /// The server could not be reached or the connection failed
    /// mid-exchange. Exit 3.
    Transport(String),
    /// The server understood us and said no — carries the stable
    /// [`ErrorCode`]. Exit 4.
    Api(ApiError),
    /// Everything local: file I/O, CSV parsing, pipeline errors.
    /// Exit 1.
    Other(String),
}

impl CliError {
    /// The documented process exit code of this failure class.
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Transport(_) => 3,
            CliError::Api(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Transport(m) | CliError::Other(m) => f.write_str(m),
            // The stable code rides along so scripts reading stderr see
            // the same identifier wire clients get.
            CliError::Api(e) => write!(f, "{} [{}]", e.message, e.code),
        }
    }
}

/// Client-layer errors classify themselves: a transport-coded failure
/// is a connectivity problem (exit 3), anything else is the server
/// rejecting the request (exit 4).
impl From<ApiError> for CliError {
    fn from(e: ApiError) -> CliError {
        if e.code == ErrorCode::Transport {
            CliError::Transport(e.message)
        } else {
            CliError::Api(e)
        }
    }
}

/// Maps a protocol-validator rejection of a *flag value* to a usage
/// error: at the CLI boundary a bad `--eps-split` is a usage mistake,
/// not an API failure.
fn usage(e: ApiError) -> CliError {
    CliError::Usage(e.message)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
usage:
  trajdp gen       --size N --len L [--seed S] --out FILE.csv
  trajdp anonymize --model pureg|purel|gl|lg [--epsilon E] [--eps-split F]
                   [--m M] [--seed S] [--parallel N]
                   --input FILE.csv --out FILE.csv
  trajdp evaluate  --original FILE.csv --anonymized FILE.csv
  trajdp stats     --input FILE.csv
  trajdp serve     [--addr HOST:PORT] [--workers N] [--max-conn N]
                   [--read-timeout SECS] [--state-dir DIR] [--max-datasets N]
                   [--dataset-ttl SECS] [--tenants FILE] [--eps-budget E]
                   [--max-queue N]
                   [--log-level off|error|warn|info|debug] [--log-json]
  trajdp submit    --addr HOST:PORT [--file REQUEST.json] [--data FILE.csv]
                   [--chunk-threshold BYTES] [--tenant NAME:TOKEN]
  trajdp fetch     --addr HOST:PORT --dataset DS-ID --out FILE.csv
                   [--tenant NAME:TOKEN]
  trajdp delete    --addr HOST:PORT --dataset DS-ID [--tenant NAME:TOKEN]
  trajdp cancel    --addr HOST:PORT --job JOB-ID [--tenant NAME:TOKEN]
  trajdp info      --addr HOST:PORT
  trajdp metrics   --addr HOST:PORT [--json]

exit codes: 0 ok, 1 local failure, 2 usage error, 3 cannot reach the
server, 4 the server rejected the request (see PROTOCOL.md)";

/// Parsed `--flag value` pairs of one subcommand.
type Flags<'a> = HashMap<&'a str, &'a str>;

fn flag_list(accepted: &[&str]) -> String {
    accepted.iter().map(|f| format!("--{f}")).collect::<Vec<_>>().join(", ")
}

/// Parses `--flag value` pairs against the subcommand's accepted set.
/// Unknown or misspelled options, bare positional arguments, duplicate
/// flags, and a trailing flag with no value are all hard errors — a
/// `--epsilonn 2.0` must fail loudly, never run with the default.
fn parse_flags<'a>(
    cmd: &str,
    args: &'a [String],
    accepted: &[&str],
) -> Result<Flags<'a>, CliError> {
    parse_flags_and_switches(cmd, args, accepted, &[]).map(|(flags, _)| flags)
}

/// Like [`parse_flags`], but also accepts bare value-less toggles
/// (`--json`, `--log-json`). Returns the value flags plus the set of
/// switches that were present.
fn parse_flags_and_switches<'a>(
    cmd: &str,
    args: &'a [String],
    accepted: &[&str],
    switches: &[&str],
) -> Result<(Flags<'a>, HashSet<&'a str>), CliError> {
    let all = || {
        let names: Vec<&str> = accepted.iter().chain(switches).copied().collect();
        flag_list(&names)
    };
    let mut flags = Flags::new();
    let mut on: HashSet<&'a str> = HashSet::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = arg.strip_prefix("--").ok_or_else(|| {
            CliError::Usage(format!(
                "unexpected argument {arg:?} to {cmd} (accepted flags: {})",
                all()
            ))
        })?;
        if switches.contains(&name) {
            if !on.insert(name) {
                return Err(CliError::Usage(format!("duplicate option --{name}")));
            }
            continue;
        }
        if !accepted.contains(&name) {
            return Err(CliError::Usage(format!(
                "unknown option --{name} for {cmd} (accepted flags: {})",
                all()
            )));
        }
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("missing value for --{name} (of {cmd})")))?;
        if value.starts_with("--") {
            // `--out --len` means --out's value was forgotten, not that
            // a file named "--len" was intended.
            return Err(CliError::Usage(format!(
                "missing value for --{name} (found flag {value:?} instead)"
            )));
        }
        if flags.insert(name, value.as_str()).is_some() {
            return Err(CliError::Usage(format!("duplicate option --{name}")));
        }
    }
    Ok((flags, on))
}

/// The value of `--name`, if given.
fn opt<'a>(flags: &Flags<'a>, name: &str) -> Option<&'a str> {
    flags.get(name).copied()
}

fn opt_parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, CliError> {
    match opt(flags, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::Usage(format!("invalid --{name}: {v:?}"))),
    }
}

fn required<'a>(flags: &Flags<'a>, name: &str) -> Result<&'a str, CliError> {
    opt(flags, name).ok_or_else(|| CliError::Usage(format!("missing required --{name}")))
}

fn load(path: &str) -> Result<Dataset, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
    from_csv(&text).map_err(|e| CliError::Other(format!("cannot parse {path}: {e}")))
}

fn save(path: &str, ds: &Dataset) -> Result<(), CliError> {
    std::fs::write(path, to_csv(ds))
        .map_err(|e| CliError::Other(format!("cannot write {path}: {e}")))
}

fn connect(addr: &str) -> Result<Client, CliError> {
    Client::connect(addr)
        .map_err(|e| CliError::Transport(format!("cannot connect to {addr} ({:?}): {e}", e.kind())))
}

/// [`connect`], stamping every typed call with the `--tenant`
/// credential when one was given.
fn connect_as(addr: &str, tenant: Option<&str>) -> Result<Client, CliError> {
    let client = connect(addr)?;
    Ok(match tenant {
        Some(credential) => client.with_tenant(credential),
        None => client,
    })
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().map(String::as_str).ok_or(CliError::Usage("no command given".into()))?;
    let rest = &args[1..];
    match cmd {
        "gen" => {
            let flags = parse_flags(cmd, rest, &["size", "len", "seed", "out"])?;
            let size = opt_parse(&flags, "size", 200usize)?;
            let len = opt_parse(&flags, "len", 150usize)?;
            let seed = opt_parse(&flags, "seed", 42u64)?;
            let out = required(&flags, "out")?;
            let world = generate(&GeneratorConfig::tdrive_profile(size, len, seed));
            save(out, &world.dataset)?;
            let stats = DatasetStats::compute(&world.dataset);
            eprintln!(
                "wrote {out}: {} trajectories, {} points, {} distinct locations",
                stats.num_trajectories, stats.total_points, stats.distinct_locations
            );
            Ok(())
        }
        "anonymize" => {
            let flags = parse_flags(
                cmd,
                rest,
                &["model", "epsilon", "eps-split", "m", "seed", "parallel", "input", "out"],
            )?;
            let model = parse_model(required(&flags, "model")?).map_err(usage)?;
            let epsilon = opt_parse(&flags, "epsilon", 1.0f64)?;
            if epsilon <= 0.0 || !epsilon.is_finite() {
                return Err(CliError::Usage("--epsilon must be positive".into()));
            }
            let eps_split =
                validate_eps_split(opt_parse(&flags, "eps-split", 0.5f64)?).map_err(usage)?;
            let m = opt_parse(&flags, "m", 10usize)?;
            let seed = opt_parse(&flags, "seed", 42u64)?;
            let parallel = validate_workers(opt_parse(&flags, "parallel", 1u64)?)
                .map_err(|e| CliError::Usage(format!("--parallel: {e}")))?;
            let input = required(&flags, "input")?;
            let out = required(&flags, "out")?;
            let ds = load(input)?;
            // Pure models spend the full ε on their single mechanism;
            // combined models split it by --eps-split (global share).
            let (eps_global, eps_local) = budget_split(model, epsilon, eps_split);
            let cfg = FreqDpConfig {
                m,
                eps_global,
                eps_local,
                seed,
                workers: parallel,
                ..Default::default()
            };
            let result = if parallel > 1 {
                anonymize_parallel(&ds, model, &cfg, parallel)
                    .map_err(|e| CliError::Other(e.to_string()))?
            } else {
                anonymize(&ds, model, &cfg).map_err(|e| CliError::Other(e.to_string()))?
            };
            save(out, &result.dataset)?;
            eprintln!(
                "wrote {out}: ε spent = {}, edits = {}, utility loss = {:.1} m",
                result.epsilon_spent,
                result.total_edits(),
                result.utility_loss()
            );
            Ok(())
        }
        "evaluate" => {
            let flags = parse_flags(cmd, rest, &["original", "anonymized"])?;
            let original = load(required(&flags, "original")?)?;
            let anonymized = load(required(&flags, "anonymized")?)?;
            if original.len() != anonymized.len() {
                return Err(CliError::Other(
                    "datasets must contain the same number of trajectories".into(),
                ));
            }
            println!("MI  = {:.4}", mutual_information(&original, &anonymized, 64));
            println!("INF = {:.4}", information_loss(&original, &anonymized));
            println!("DE  = {:.4}", diameter_divergence(&original, &anonymized, 24));
            println!("TE  = {:.4}", trip_divergence(&original, &anonymized, 16));
            println!("FFP = {:.4}", frequent_pattern_f1(&original, &anonymized, 64, 2, 200));
            Ok(())
        }
        "stats" => {
            let flags = parse_flags(cmd, rest, &["input"])?;
            let ds = load(required(&flags, "input")?)?;
            let s = DatasetStats::compute(&ds);
            println!("{s:#?}");
            Ok(())
        }
        "serve" => {
            let (flags, switches) = parse_flags_and_switches(
                cmd,
                rest,
                &[
                    "addr",
                    "workers",
                    "max-conn",
                    "read-timeout",
                    "state-dir",
                    "max-datasets",
                    "dataset-ttl",
                    "tenants",
                    "eps-budget",
                    "max-queue",
                    "log-level",
                ],
                &["log-json"],
            )?;
            let log_json = switches.contains("log-json");
            let log_level = match opt(&flags, "log-level") {
                Some(v) => LogLevel::parse(v).ok_or_else(|| {
                    CliError::Usage(format!(
                        "invalid --log-level: {v:?} (expected off, error, warn, info, or debug)"
                    ))
                })?,
                // `--log-json` alone means "log, as JSON" — silent JSON
                // would be a useless combination.
                None if log_json => LogLevel::Info,
                None => LogLevel::Off,
            };
            init_logger(log_level, log_json);
            let addr = opt(&flags, "addr").unwrap_or("127.0.0.1:7878").to_string();
            let workers = validate_workers(opt_parse(&flags, "workers", 2u64)?)
                .map_err(|e| CliError::Usage(format!("--workers: {e}")))?;
            let max_connections = opt_parse(&flags, "max-conn", 1024usize)?;
            if max_connections == 0 {
                return Err(CliError::Usage("--max-conn must be at least 1".into()));
            }
            let read_timeout_secs = opt_parse(&flags, "read-timeout", 10u64)?;
            if read_timeout_secs == 0 {
                return Err(CliError::Usage("--read-timeout must be at least 1 second".into()));
            }
            let state_dir = opt(&flags, "state-dir").map(std::path::PathBuf::from);
            let max_datasets = opt_parse(
                &flags,
                "max-datasets",
                traj_freq_dp::server::store::MAX_STORED_DATASETS,
            )?;
            if max_datasets == 0 {
                return Err(CliError::Usage("--max-datasets must be at least 1".into()));
            }
            let dataset_ttl = match opt(&flags, "dataset-ttl") {
                None => None,
                Some(v) => {
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| CliError::Usage(format!("invalid --dataset-ttl: {v:?}")))?;
                    if secs == 0 {
                        return Err(CliError::Usage(
                            "--dataset-ttl must be at least 1 second".into(),
                        ));
                    }
                    Some(std::time::Duration::from_secs(secs))
                }
            };
            let tenants = opt(&flags, "tenants").map(std::path::PathBuf::from);
            let eps_budget = match opt(&flags, "eps-budget") {
                None => None,
                Some(v) => {
                    let eps: f64 = v
                        .parse()
                        .map_err(|_| CliError::Usage(format!("invalid --eps-budget: {v:?}")))?;
                    if !eps.is_finite() || eps <= 0.0 {
                        return Err(CliError::Usage(
                            "--eps-budget must be a positive number".into(),
                        ));
                    }
                    Some(eps)
                }
            };
            let max_queue = match opt(&flags, "max-queue") {
                None => None,
                Some(v) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| CliError::Usage(format!("invalid --max-queue: {v:?}")))?;
                    if n == 0 {
                        return Err(CliError::Usage("--max-queue must be at least 1".into()));
                    }
                    Some(n)
                }
            };
            let durable = state_dir.is_some();
            let server = Server::start(ServerConfig {
                addr,
                workers,
                max_connections,
                read_timeout: std::time::Duration::from_secs(read_timeout_secs),
                state_dir,
                max_datasets,
                dataset_ttl,
                tenants,
                eps_budget,
                max_queue,
                ..ServerConfig::default()
            })
            .map_err(|e| CliError::Other(format!("cannot start: {e}")))?;
            eprintln!(
                "trajdp-server listening on {} ({} job workers{}); \
                 send JSON-lines requests, e.g. {{\"cmd\":\"health\"}}",
                server.local_addr(),
                workers,
                if durable { ", durable job journal" } else { "" }
            );
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
        "submit" => {
            let flags =
                parse_flags(cmd, rest, &["addr", "file", "data", "chunk-threshold", "tenant"])?;
            let addr = required(&flags, "addr")?;
            let threshold = opt_parse(&flags, "chunk-threshold", CHUNK_THRESHOLD_BYTES)?;
            if threshold == 0 {
                return Err(CliError::Usage("--chunk-threshold must be at least 1".into()));
            }
            let data = match opt(&flags, "data") {
                Some(path) => Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?,
                ),
                None => None,
            };
            let request = match opt(&flags, "file") {
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?,
                None => {
                    let mut buf = String::new();
                    std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                        .map_err(|e| CliError::Other(format!("cannot read stdin: {e}")))?;
                    buf
                }
            };
            // --tenant stamps the typed chunked-upload calls; raw
            // request lines still travel verbatim — a request file
            // carries its own "tenant" member if it wants one.
            let mut client = connect_as(addr, opt(&flags, "tenant"))?;
            for line in request.lines().filter(|l| !l.trim().is_empty()) {
                let response = match prepare_request(&mut client, line, data.as_deref(), threshold)?
                {
                    Some(rewritten) => client.request(&rewritten)?,
                    None => client.request_line(line)?,
                };
                println!("{response}");
            }
            Ok(())
        }
        "fetch" => {
            let flags = parse_flags(cmd, rest, &["addr", "dataset", "out", "tenant"])?;
            let addr = required(&flags, "addr")?;
            let dataset = required(&flags, "dataset")?;
            let out = required(&flags, "out")?;
            let mut client = connect_as(addr, opt(&flags, "tenant"))?;
            let csv = client.download_dataset(dataset)?;
            std::fs::write(out, &csv)
                .map_err(|e| CliError::Other(format!("cannot write {out}: {e}")))?;
            eprintln!("wrote {out}: {} bytes from {dataset}", csv.len());
            Ok(())
        }
        "delete" => {
            let flags = parse_flags(cmd, rest, &["addr", "dataset", "tenant"])?;
            let addr = required(&flags, "addr")?;
            let dataset = required(&flags, "dataset")?;
            let mut client = connect_as(addr, opt(&flags, "tenant"))?;
            let info = client.delete_dataset(dataset)?;
            eprintln!("deleted {dataset}: freed {} bytes", info.bytes);
            Ok(())
        }
        "cancel" => {
            let flags = parse_flags(cmd, rest, &["addr", "job", "tenant"])?;
            let addr = required(&flags, "addr")?;
            let job = required(&flags, "job")?;
            let mut client = connect_as(addr, opt(&flags, "tenant"))?;
            let cancelled = client.cancel(job)?;
            eprintln!("cancelled {cancelled}");
            Ok(())
        }
        "info" => {
            let flags = parse_flags(cmd, rest, &["addr"])?;
            let addr = required(&flags, "addr")?;
            let mut client = connect(addr)?;
            let info = client.info()?;
            // `key=value` lines: stable to parse from shell, readable
            // at a glance.
            println!("version={}", info.version);
            println!(
                "protocol_versions={}",
                info.protocol_versions.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            );
            println!("workers={}", info.workers);
            println!("max_datasets={}", info.max_datasets);
            println!("max_dataset_bytes={}", info.max_dataset_bytes);
            println!("max_request_bytes={}", info.max_request_bytes);
            println!("max_download_chunk_bytes={}", info.max_download_chunk_bytes);
            println!("default_download_chunk_bytes={}", info.default_download_chunk_bytes);
            println!("max_gen_points={}", info.max_gen_points);
            println!("max_m={}", info.max_m);
            println!("max_workers={}", info.max_workers);
            println!("max_connections={}", info.max_connections);
            println!("read_timeout_secs={}", info.read_timeout_secs);
            println!("uptime_secs={}", info.uptime_secs);
            println!("started_at={}", info.started_at);
            println!("state_dir={}", info.state_dir);
            println!("tenants={}", info.tenants);
            if let Some(eps) = info.eps_budget {
                println!("eps_budget={eps}");
            }
            Ok(())
        }
        "metrics" => {
            let (flags, switches) = parse_flags_and_switches(cmd, rest, &["addr"], &["json"])?;
            let addr = required(&flags, "addr")?;
            let mut client = connect(addr)?;
            let snap = client.metrics()?;
            if switches.contains("json") {
                println!("{}", snap.to_json());
            } else {
                // Prometheus text exposition already ends in a newline.
                print!("{}", snap.to_prometheus());
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Above this many bytes, `submit` ships a dataset member via chunked
/// upload (`upload`/`chunk`/`commit`) and rewrites the request to use
/// the returned handle, instead of inlining a giant string into one
/// JSON line. Overridable with `--chunk-threshold`.
const CHUNK_THRESHOLD_BYTES: usize = 1024 * 1024;

/// Upload piece size: the threshold, but never so large that one
/// `chunk` request line (with JSON escaping overhead) could trip the
/// server's per-line framing limit and poison the connection.
const MAX_UPLOAD_PIECE_BYTES: usize = 8 * 1024 * 1024;

/// Inline request members that can be swapped for a dataset handle,
/// with the commands that accept the handle form. The command gate
/// matters: uploading for a request the server will reject anyway
/// would occupy a store slot until the upload-TTL sweep or an eviction
/// reclaims it.
const CHUNKABLE_MEMBERS: [(&str, &str, &[&str]); 3] = [
    ("csv", "dataset", &["anonymize", "stats"]),
    ("original", "original_dataset", &["evaluate"]),
    ("anonymized", "anonymized_dataset", &["evaluate"]),
];

/// Applies `--data` splicing and the chunked-upload switch to one
/// request line. Returns `None` when the line should be sent verbatim
/// — including any line that is not a JSON object when no `--data` is
/// in play: the server answers those with a per-line error, the same
/// way regardless of the line's size, and the remaining lines still
/// run. With `--data`, every line must be a JSON object (there is
/// nothing to splice into otherwise), so a malformed line is a hard
/// error.
///
/// `--data` splices only into commands that take a `csv` member
/// (`anonymize`, `stats`) — other lines in the same file (`status`,
/// `health`, …) pass through untouched — and conflicts with a request
/// that already names its own dataset: silently replacing it would run
/// the job on different data than the request line says. The
/// chunked-upload switch is gated the same way: uploading for a
/// command the server cannot accept a handle for would occupy a store
/// slot just to be rejected.
fn prepare_request(
    client: &mut Client,
    line: &str,
    data: Option<&str>,
    threshold: usize,
) -> Result<Option<traj_freq_dp::server::Json>, CliError> {
    use traj_freq_dp::server::Json;
    let parsed = traj_freq_dp::server::json::parse(line);
    let mut obj = match (parsed, data) {
        (Ok(Json::Obj(obj)), _) => obj,
        (_, None) => return Ok(None),
        (Ok(_), Some(_)) => {
            return Err(CliError::Usage(
                "--data requires each request line to be a JSON object".to_string(),
            ))
        }
        (Err(e), Some(_)) => {
            return Err(CliError::Usage(format!("cannot parse request line: {e}")))
        }
    };
    let cmd = obj.get("cmd").and_then(Json::as_str).unwrap_or("").to_string();
    let mut rewritten = false;
    if let Some(csv) = data {
        if matches!(cmd.as_str(), "anonymize" | "stats") {
            if obj.contains_key("csv") || obj.contains_key("dataset") {
                return Err(CliError::Usage(format!(
                    "--data conflicts with the {cmd} request's own \"csv\"/\"dataset\" member"
                )));
            }
            obj.insert("csv".to_string(), Json::from(csv));
            rewritten = true;
        }
    }
    for (inline_key, handle_key, commands) in CHUNKABLE_MEMBERS {
        if !commands.contains(&cmd.as_str()) {
            continue;
        }
        let oversized = matches!(obj.get(inline_key), Some(Json::Str(s)) if s.len() > threshold);
        if oversized {
            let Some(Json::Str(csv)) = obj.remove(inline_key) else { unreachable!() };
            let uploaded = client.upload_dataset(&csv, threshold.min(MAX_UPLOAD_PIECE_BYTES))?;
            obj.insert(handle_key.to_string(), Json::from(uploaded.dataset));
            rewritten = true;
        }
    }
    Ok(rewritten.then_some(Json::Obj(obj)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The rendered message of a CLI error, for content asserts.
    fn msg(e: CliError) -> String {
        e.to_string()
    }

    #[test]
    fn opt_parsing() {
        let args = a(&["--size", "10", "--out", "x.csv"]);
        let flags = parse_flags("gen", &args, &["size", "len", "seed", "out"]).unwrap();
        assert_eq!(opt(&flags, "size"), Some("10"));
        assert_eq!(opt(&flags, "len"), None);
        assert_eq!(opt_parse(&flags, "size", 5usize).unwrap(), 10);
        assert_eq!(opt_parse(&flags, "len", 5usize).unwrap(), 5);
        assert!(required(&flags, "out").is_ok());
        assert!(required(&flags, "seed").is_err());
        let args = a(&["--size", "xx"]);
        let bad = parse_flags("gen", &args, &["size"]).unwrap();
        assert!(opt_parse::<usize>(&bad, "size", 1).is_err());
    }

    #[test]
    fn unknown_and_dangling_flags_are_rejected() {
        // A misspelled flag must not silently run with the default.
        let err =
            msg(parse_flags("anonymize", &a(&["--epsilonn", "2.0"]), &["epsilon"]).unwrap_err());
        assert!(err.contains("--epsilonn") && err.contains("--epsilon"), "{err}");
        // A trailing flag with no value must not be ignored.
        let err =
            msg(parse_flags("gen", &a(&["--size", "5", "--seed"]), &["size", "seed"]).unwrap_err());
        assert!(err.contains("missing value for --seed"), "{err}");
        // A flag token in value position means the value was forgotten;
        // it must not be swallowed as the value.
        let err =
            msg(parse_flags("gen", &a(&["--out", "--len", "5"]), &["out", "len"]).unwrap_err());
        assert!(err.contains("missing value for --out"), "{err}");
        // Bare positional arguments and duplicates are errors too.
        assert!(msg(parse_flags("stats", &a(&["input.csv"]), &["input"]).unwrap_err())
            .contains("unexpected argument"));
        assert!(msg(
            parse_flags("gen", &a(&["--size", "1", "--size", "2"]), &["size"]).unwrap_err()
        )
        .contains("duplicate"));
    }

    #[test]
    fn misspelled_flag_errors_name_accepted_flags() {
        let err = msg(run(&a(&["anonymize", "--model", "gl", "--epsilonn", "2.0"])).unwrap_err());
        assert!(err.contains("unknown option --epsilonn"), "{err}");
        assert!(err.contains("--epsilon") && err.contains("--eps-split"), "{err}");
        let err = msg(run(&a(&["gen", "--out", "x.csv", "--sizee", "5"])).unwrap_err());
        assert!(err.contains("--sizee"), "{err}");
    }

    #[test]
    fn error_classes_map_to_documented_exit_codes() {
        // Usage: unknown command / bad flags → 2.
        assert_eq!(run(&a(&["bogus"])).unwrap_err().exit_code(), 2);
        assert_eq!(run(&a(&["gen", "--sizee", "5"])).unwrap_err().exit_code(), 2);
        assert_eq!(run(&[]).unwrap_err().exit_code(), 2);
        // Transport: nothing listens on a reserved port → 3.
        let err = run(&a(&["info", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Local failure: unreadable input file → 1.
        let err = run(&a(&["stats", "--input", "/definitely/not/a/file.csv"])).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
        // Api: a server that answers with an error code → 4 (and the
        // code is named in the message for stderr readers).
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let err = run(&a(&["delete", "--addr", &addr, "--dataset", "ds-404"])).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(msg(err).contains("dataset-not-found"));
        server.shutdown();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        let err = msg(run(&a(&["serve", "--workers", "0"])).unwrap_err());
        assert!(err.contains("workers") && err.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&a(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_anonymize_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("trajdp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let private = dir.join("private.csv");
        let release = dir.join("release.csv");
        let p = private.to_str().unwrap();
        let r = release.to_str().unwrap();
        run(&a(&["gen", "--size", "12", "--len", "40", "--seed", "3", "--out", p])).unwrap();
        run(&a(&[
            "anonymize",
            "--model",
            "gl",
            "--epsilon",
            "1.0",
            "--m",
            "4",
            "--input",
            p,
            "--out",
            r,
        ]))
        .unwrap();
        run(&a(&["evaluate", "--original", p, "--anonymized", r])).unwrap();
        run(&a(&["stats", "--input", r])).unwrap();
        let released = load(r).unwrap();
        assert_eq!(released.len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn anonymize_rejects_bad_eps_split() {
        for bad in ["0", "1", "-0.2", "1.5", "nan"] {
            let err = run(&a(&[
                "anonymize",
                "--model",
                "gl",
                "--eps-split",
                bad,
                "--input",
                "x",
                "--out",
                "y",
            ]))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad}: bad eps-split is a usage error");
            let err = msg(err);
            assert!(err.contains("eps-split") || err.contains("invalid"), "{bad}: {err}");
        }
    }

    #[test]
    fn parallel_flag_matches_serial_output() {
        let dir = std::env::temp_dir().join("trajdp-cli-parallel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let private = dir.join("private.csv");
        let serial = dir.join("serial.csv");
        let parallel = dir.join("parallel.csv");
        let p = private.to_str().unwrap();
        run(&a(&["gen", "--size", "10", "--len", "30", "--seed", "5", "--out", p])).unwrap();
        run(&a(&[
            "anonymize",
            "--model",
            "gl",
            "--seed",
            "11",
            "--m",
            "4",
            "--input",
            p,
            "--out",
            serial.to_str().unwrap(),
        ]))
        .unwrap();
        run(&a(&[
            "anonymize",
            "--model",
            "gl",
            "--seed",
            "11",
            "--m",
            "4",
            "--parallel",
            "8",
            "--input",
            p,
            "--out",
            parallel.to_str().unwrap(),
        ]))
        .unwrap();
        let a_csv = std::fs::read_to_string(&serial).unwrap();
        let b_csv = std::fs::read_to_string(&parallel).unwrap();
        assert_eq!(a_csv, b_csv, "--parallel 8 must be byte-identical to serial");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_zero_rejected() {
        let err = run(&a(&[
            "anonymize",
            "--model",
            "gl",
            "--parallel",
            "0",
            "--input",
            "x",
            "--out",
            "y",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(msg(err).contains("parallel"));
    }

    #[test]
    fn prepare_request_switches_large_members_to_chunked_upload() {
        use traj_freq_dp::server::Json;
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Small lines pass through verbatim (None = send as-is).
        assert_eq!(prepare_request(&mut client, r#"{"cmd":"health"}"#, None, 100).unwrap(), None);

        // A csv member over the threshold is uploaded chunked and the
        // request rewritten to reference the handle.
        let big = "traj_id,x,y,t\n".to_string() + &"0,1.0,2.0,3\n".repeat(40);
        let line =
            Json::obj([("cmd", Json::from("stats")), ("csv", Json::from(big.clone()))]).to_string();
        let rewritten =
            prepare_request(&mut client, &line, None, 64).unwrap().expect("must rewrite");
        assert!(rewritten.get("csv").is_none());
        let handle = rewritten.get("dataset").and_then(Json::as_str).unwrap().to_string();
        // The handle is committed and usable: the rewritten request runs.
        let resp = client.request(&rewritten).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
        assert_eq!(resp.get("trajectories").and_then(Json::as_u64), Some(1));

        // --data splices the dataset file into the request.
        let spliced = prepare_request(&mut client, r#"{"cmd":"stats"}"#, Some(&big), 1 << 20)
            .unwrap()
            .expect("splice must rewrite");
        assert_eq!(spliced.get("csv").and_then(Json::as_str), Some(big.as_str()));
        // Only into commands that take a dataset: a status line in the
        // same file passes through verbatim.
        let status_line = r#"{"cmd":"status","job":"job-1"}"#;
        assert_eq!(prepare_request(&mut client, status_line, Some(&big), 1 << 20).unwrap(), None);
        // The upload switch is gated the same way: a big member on a
        // command the server would reject anyway must not burn a store
        // slot — the line goes through verbatim for a per-line error.
        let misspelled =
            Json::obj([("cmd", Json::from("anonymise")), ("csv", Json::from(big.clone()))])
                .to_string();
        assert_eq!(prepare_request(&mut client, &misspelled, None, 64).unwrap(), None);
        // A request that already names its own dataset conflicts
        // instead of being silently overwritten.
        for conflicting in
            [r#"{"cmd":"stats","csv":"x"}"#, r#"{"cmd":"anonymize","model":"gl","dataset":"ds-1"}"#]
        {
            let err =
                msg(prepare_request(&mut client, conflicting, Some(&big), 1 << 20).unwrap_err());
            assert!(err.contains("conflicts"), "{err}");
        }
        // And --data with a non-object request line is a hard error.
        assert!(prepare_request(&mut client, "not json", Some(&big), 1 << 20).is_err());

        let _ = handle;
        drop(client);
        server.shutdown();
    }

    #[test]
    fn fetch_cli_downloads_a_stored_dataset() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let csv = "traj_id,x,y,t\n7,1.5,2.5,3\n".repeat(30);
        let handle = {
            let mut client = Client::connect(&addr).unwrap();
            client.upload_dataset(&csv, 50).unwrap().dataset
        };
        let dir = std::env::temp_dir().join("trajdp-cli-fetch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fetched.csv");
        run(&a(&["fetch", "--addr", &addr, "--dataset", &handle, "--out", out.to_str().unwrap()]))
            .unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), csv);
        // Required flags are enforced.
        assert!(msg(run(&a(&["fetch", "--addr", &addr])).unwrap_err()).contains("--dataset"));
        // The delete verb frees the handle; a second delete reports it
        // unknown, as does a fetch.
        run(&a(&["delete", "--addr", &addr, "--dataset", &handle])).unwrap();
        let err = msg(run(&a(&["delete", "--addr", &addr, "--dataset", &handle])).unwrap_err());
        assert!(err.contains("unknown dataset"), "{err}");
        let err = msg(run(&a(&[
            "fetch",
            "--addr",
            &addr,
            "--dataset",
            &handle,
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err());
        assert!(err.contains("unknown dataset"), "{err}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_cli_reports_server_limits() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        // The typed client sees the same limits the verb prints.
        let mut client = Client::connect(&addr).unwrap();
        let info = client.info().unwrap();
        assert_eq!(info.protocol_versions, vec![1, 2]);
        assert_eq!(info.workers, 2, "default ServerConfig starts 2 workers");
        assert_eq!(info.max_datasets, traj_freq_dp::server::store::MAX_STORED_DATASETS as u64);
        assert_eq!(info.max_connections, 1024, "default shed threshold");
        assert_eq!(info.read_timeout_secs, 10, "default read deadline");
        assert!(info.max_download_chunk_bytes >= info.default_download_chunk_bytes);
        drop(client);
        run(&a(&["info", "--addr", &addr])).unwrap();
        // Required flags are enforced.
        assert!(run(&a(&["info"])).is_err());
        server.shutdown();
    }

    #[test]
    fn metrics_cli_scrapes_a_live_server() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        client.info().unwrap();
        drop(client);
        // Both expositions work against a live server; the typed client
        // sees the info request counted above.
        run(&a(&["metrics", "--addr", &addr])).unwrap();
        run(&a(&["metrics", "--addr", &addr, "--json"])).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        let snap = client.metrics().unwrap();
        let info_count = snap.requests.iter().find(|r| r.verb == "info").map(|r| r.count).unwrap();
        assert!(info_count >= 1, "info requests must be counted, got {info_count}");
        assert!(run(&a(&["metrics"])).is_err(), "--addr is required");
        server.shutdown();
    }

    #[test]
    fn serve_rejects_bad_log_level() {
        let err = msg(run(&a(&["serve", "--log-level", "loud"])).unwrap_err());
        assert!(err.contains("log-level"), "{err}");
        // `--log-json` is a bare switch: it must not eat a value.
        let err = msg(run(&a(&["serve", "--log-json", "true"])).unwrap_err());
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_lifecycle_knobs() {
        let err = msg(run(&a(&["serve", "--max-datasets", "0"])).unwrap_err());
        assert!(err.contains("max-datasets"), "{err}");
        let err = msg(run(&a(&["serve", "--dataset-ttl", "0"])).unwrap_err());
        assert!(err.contains("dataset-ttl"), "{err}");
        let err = msg(run(&a(&["serve", "--dataset-ttl", "soon"])).unwrap_err());
        assert!(err.contains("dataset-ttl"), "{err}");
        let err = msg(run(&a(&["serve", "--max-conn", "0"])).unwrap_err());
        assert!(err.contains("max-conn"), "{err}");
        let err = msg(run(&a(&["serve", "--read-timeout", "0"])).unwrap_err());
        assert!(err.contains("read-timeout"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_tenancy_knobs() {
        for bad in ["0", "-1", "nan", "inf", "x"] {
            let err = msg(run(&a(&["serve", "--eps-budget", bad])).unwrap_err());
            assert!(err.contains("eps-budget"), "{bad}: {err}");
        }
        for bad in ["0", "x"] {
            let err = msg(run(&a(&["serve", "--max-queue", bad])).unwrap_err());
            assert!(err.contains("max-queue"), "{bad}: {err}");
        }
        // A tenants file that cannot be loaded fails startup loudly
        // (exit 1, not a silent open server).
        let err = run(&a(&["serve", "--tenants", "/definitely/not/a/file"])).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
        assert!(msg(err).contains("tenants"), "names the tenants file");
    }

    #[test]
    fn cancel_requires_job_and_classifies_api_rejections() {
        assert!(msg(run(&a(&["cancel", "--addr", "127.0.0.1:1"])).unwrap_err()).contains("--job"));
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let err = run(&a(&["cancel", "--addr", &addr, "--job", "job-404"])).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(msg(err).contains("job-not-found"));
        server.shutdown();
    }

    #[test]
    fn submit_rejects_zero_chunk_threshold() {
        let err =
            run(&a(&["submit", "--addr", "127.0.0.1:1", "--chunk-threshold", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(msg(err).contains("chunk-threshold"));
    }

    #[test]
    fn anonymize_rejects_bad_model_and_epsilon() {
        let err =
            msg(run(&a(&["anonymize", "--model", "zzz", "--input", "x", "--out", "y"]))
                .unwrap_err());
        assert!(err.contains("unknown model"));
        let err = msg(run(&a(&[
            "anonymize",
            "--model",
            "gl",
            "--epsilon",
            "-1",
            "--input",
            "x",
            "--out",
            "y",
        ]))
        .unwrap_err());
        assert!(err.contains("positive"));
    }
}
